"""Tests for repro.graph: structure, traversal, bisection, separators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gen import grid2d_laplacian, grid3d_laplacian, random_spd_sparse
from repro.graph import (
    AdjacencyGraph,
    bfs_levels,
    connected_components,
    pseudo_peripheral_vertex,
    bisect,
    vertex_separator_from_bisection,
)
from repro.graph.bisection import cut_size
from repro.graph.separators import is_separator
from repro.util.errors import OrderingError, ShapeError


def path_graph(n):
    a = np.arange(n - 1)
    return AdjacencyGraph.from_edges(n, a, a + 1)


def grid_graph(nx, ny=None):
    return AdjacencyGraph.from_symmetric_lower(grid2d_laplacian(nx, ny))


class TestStructure:
    def test_from_edges_basic(self):
        g = AdjacencyGraph.from_edges(3, [0, 1], [1, 2])
        assert g.n == 3
        assert g.n_edges == 2
        assert g.neighbors(1).tolist() == [0, 2]

    def test_self_loops_removed(self):
        g = AdjacencyGraph.from_edges(3, [0, 1, 2], [1, 1, 2])
        assert g.n_edges == 1

    def test_duplicate_edges_collapsed(self):
        g = AdjacencyGraph.from_edges(2, [0, 1, 0], [1, 0, 1])
        assert g.n_edges == 1
        assert g.degree(0) == 1

    def test_from_symmetric_lower(self):
        g = AdjacencyGraph.from_symmetric_lower(grid2d_laplacian(3))
        assert g.n == 9
        assert g.n_edges == 12  # 3x2x2 grid edges

    def test_degrees(self):
        g = grid_graph(3)
        degs = g.degrees()
        assert degs.min() == 2  # corners
        assert degs.max() == 4  # center

    def test_validation_catches_asymmetry(self):
        with pytest.raises(ShapeError):
            AdjacencyGraph(2, [0, 1, 1], [1])

    def test_validation_catches_self_loop(self):
        with pytest.raises(ShapeError):
            AdjacencyGraph(1, [0, 1], [0])

    def test_subgraph(self):
        g = path_graph(5)
        sub, vmap = g.subgraph([1, 2, 3])
        assert sub.n == 3
        assert sub.n_edges == 2
        assert vmap.tolist() == [1, 2, 3]

    def test_subgraph_drops_external_edges(self):
        g = path_graph(5)
        sub, _ = g.subgraph([0, 4])
        assert sub.n_edges == 0

    def test_empty_graph(self):
        g = AdjacencyGraph.from_edges(4, [], [])
        assert g.n_edges == 0
        assert g.degree(0) == 0


class TestTraversal:
    def test_bfs_path(self):
        g = path_graph(5)
        np.testing.assert_array_equal(bfs_levels(g, 0), [0, 1, 2, 3, 4])
        np.testing.assert_array_equal(bfs_levels(g, 2), [2, 1, 0, 1, 2])

    def test_bfs_unreachable(self):
        g = AdjacencyGraph.from_edges(4, [0], [1])
        levels = bfs_levels(g, 0)
        assert levels[2] == -1 and levels[3] == -1

    def test_components_single(self):
        g = grid_graph(3)
        assert np.unique(connected_components(g)).size == 1

    def test_components_multiple(self):
        g = AdjacencyGraph.from_edges(6, [0, 2, 4], [1, 3, 5])
        comp = connected_components(g)
        assert np.unique(comp).size == 3
        assert comp[0] == comp[1]
        assert comp[2] == comp[3]
        assert comp[0] != comp[2]

    def test_components_isolated_vertices(self):
        g = AdjacencyGraph.from_edges(3, [], [])
        assert np.unique(connected_components(g)).size == 3

    def test_pseudo_peripheral_on_path(self):
        g = path_graph(9)
        v = pseudo_peripheral_vertex(g, 4)
        assert v in (0, 8)

    def test_pseudo_peripheral_on_grid(self):
        g = grid_graph(5)
        v = pseudo_peripheral_vertex(g, 12)  # center
        levels = bfs_levels(g, v)
        # corner-to-corner eccentricity of 5x5 grid is 8
        assert levels.max() == 8

    def test_pseudo_peripheral_singleton(self):
        g = AdjacencyGraph.from_edges(1, [], [])
        assert pseudo_peripheral_vertex(g, 0) == 0


class TestBisection:
    @pytest.mark.parametrize("nx,ny", [(4, 4), (6, 5), (8, 8)])
    def test_balance(self, nx, ny):
        g = grid_graph(nx, ny)
        side = bisect(g)
        n1 = int(side.sum())
        assert min(n1, g.n - n1) >= int(0.45 * g.n) - 1

    def test_grid_cut_near_optimal(self):
        # 8x8 grid: optimal bisection cut is 8; allow 2x slack.
        g = grid_graph(8)
        side = bisect(g)
        assert cut_size(g, side) <= 16

    def test_refinement_improves_or_keeps(self):
        g = grid_graph(7)
        rough = bisect(g, refine_passes=0)
        refined = bisect(g, refine_passes=4)
        assert cut_size(g, refined) <= cut_size(g, rough)

    def test_empty_and_single(self):
        assert bisect(AdjacencyGraph.from_edges(0, [], [])).size == 0
        assert bisect(AdjacencyGraph.from_edges(1, [], [])).tolist() == [False]

    def test_two_vertices(self):
        g = path_graph(2)
        side = bisect(g)
        assert side.sum() == 1

    def test_invalid_balance(self):
        with pytest.raises(OrderingError):
            bisect(grid_graph(3), balance=0.5)

    def test_disconnected(self):
        g = AdjacencyGraph.from_edges(8, [0, 1, 4, 5], [1, 2, 5, 6])
        side = bisect(g)
        n1 = int(side.sum())
        assert 2 <= n1 <= 6

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 40), st.integers(0, 10_000))
    def test_property_balance_random_graphs(self, n, seed):
        lower = random_spd_sparse(n, avg_degree=3, seed=seed)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        side = bisect(g)
        n1 = int(side.sum())
        max_part = max(int(np.floor(0.55 * n)), n // 2 + n % 2)
        assert max(n1, n - n1) <= max_part


class TestSeparators:
    @pytest.mark.parametrize("nx", [4, 6, 9])
    def test_separator_is_valid(self, nx):
        g = grid_graph(nx)
        side = bisect(g)
        p0, p1, sep = vertex_separator_from_bisection(g, side)
        # Partition covers everything exactly once.
        all_v = np.sort(np.concatenate([p0, p1, sep]))
        np.testing.assert_array_equal(all_v, np.arange(g.n))
        assert is_separator(g, p0, p1)

    def test_separator_small_on_grid(self):
        g = grid_graph(10)
        side = bisect(g)
        _, _, sep = vertex_separator_from_bisection(g, side)
        # grid separator should be O(nx); allow 2.5x
        assert sep.size <= 25

    def test_no_cut_no_separator(self):
        g = AdjacencyGraph.from_edges(4, [0, 2], [1, 3])
        side = np.array([False, False, True, True])
        p0, p1, sep = vertex_separator_from_bisection(g, side)
        assert sep.size == 0
        assert is_separator(g, p0, p1)

    def test_3d_separator_valid(self):
        g = AdjacencyGraph.from_symmetric_lower(grid3d_laplacian(5))
        side = bisect(g)
        p0, p1, sep = vertex_separator_from_bisection(g, side)
        assert is_separator(g, p0, p1)
        assert sep.size <= 50  # ~25 optimal for 5x5x5

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 35), st.integers(0, 10_000))
    def test_property_separator_random(self, n, seed):
        lower = random_spd_sparse(n, avg_degree=3, seed=seed)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        side = bisect(g)
        p0, p1, sep = vertex_separator_from_bisection(g, side)
        all_v = np.sort(np.concatenate([p0, p1, sep]))
        np.testing.assert_array_equal(all_v, np.arange(n))
        assert is_separator(g, p0, p1)
