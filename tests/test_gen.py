"""Tests for repro.gen generators: structure, symmetry, SPD-ness."""

import numpy as np
import pytest

from repro.gen import (
    grid2d_laplacian,
    grid3d_laplacian,
    grid2d_9pt,
    grid3d_27pt,
    grid2d_anisotropic,
    elasticity3d,
    random_spd_sparse,
    random_sym_pattern,
    paper_suite,
    get_paper_matrix,
)
from repro.sparse.ops import full_symmetric_from_lower
from repro.util.errors import ShapeError


def assert_spd_lower(lower):
    """Lower-triangular CSC represents an SPD matrix (dense oracle)."""
    full = full_symmetric_from_lower(lower).to_dense()
    np.testing.assert_allclose(full, full.T)
    eigvals = np.linalg.eigvalsh(full)
    assert eigvals.min() > 0, f"min eigenvalue {eigvals.min()}"


class TestGrid2D:
    def test_shape_and_nnz(self):
        m = grid2d_laplacian(3, 4)
        assert m.shape == (12, 12)
        # diagonal 12 + edges: 4 rows of 2 horizontal + 3 cols... edges = ny*(nx-1) + nx*(ny-1)
        assert m.nnz == 12 + 4 * 2 + 3 * 3

    def test_known_values(self):
        d = full_symmetric_from_lower(grid2d_laplacian(2)).to_dense()
        expected = np.array(
            [
                [4.0, -1.0, -1.0, 0.0],
                [-1.0, 4.0, 0.0, -1.0],
                [-1.0, 0.0, 4.0, -1.0],
                [0.0, -1.0, -1.0, 4.0],
            ]
        )
        np.testing.assert_array_equal(d, expected)

    def test_spd(self):
        assert_spd_lower(grid2d_laplacian(5, 4))

    def test_single_vertex(self):
        m = grid2d_laplacian(1)
        assert m.shape == (1, 1)
        assert m.to_dense()[0, 0] == 4.0

    def test_invalid_dims(self):
        with pytest.raises(ShapeError):
            grid2d_laplacian(0)

    def test_square_default(self):
        assert grid2d_laplacian(4).shape == (16, 16)


class TestGrid3D:
    def test_shape(self):
        assert grid3d_laplacian(2, 3, 4).shape == (24, 24)

    def test_spd(self):
        assert_spd_lower(grid3d_laplacian(3))

    def test_degree_bound(self):
        # every vertex has at most 6 mesh neighbours
        m = full_symmetric_from_lower(grid3d_laplacian(4))
        assert int(m.col_degrees().max()) <= 7  # + diagonal

    def test_interior_row_sums_zero_offdiag(self):
        d = full_symmetric_from_lower(grid3d_laplacian(3)).to_dense()
        center = 13  # (1,1,1) in a 3x3x3 grid
        assert d[center, center] == 6.0
        assert np.sum(d[center]) == 0.0  # interior row: 6 - 6*1


class TestStencils9And27:
    def test_9pt_spd(self):
        assert_spd_lower(grid2d_9pt(5))

    def test_9pt_denser_than_5pt(self):
        assert grid2d_9pt(6).nnz > grid2d_laplacian(6).nnz

    def test_27pt_spd(self):
        assert_spd_lower(grid3d_27pt(3))

    def test_27pt_neighbor_count(self):
        d = full_symmetric_from_lower(grid3d_27pt(3)).to_dense()
        center = 13
        assert np.count_nonzero(d[center]) == 27

    def test_27pt_denser_than_7pt(self):
        assert grid3d_27pt(4).nnz > grid3d_laplacian(4).nnz


class TestAnisotropic:
    def test_spd(self):
        assert_spd_lower(grid2d_anisotropic(5, 5, epsilon=0.01))

    def test_epsilon_validation(self):
        with pytest.raises(ShapeError):
            grid2d_anisotropic(3, 3, epsilon=0.0)

    def test_couplings(self):
        d = full_symmetric_from_lower(grid2d_anisotropic(3, 3, epsilon=0.1)).to_dense()
        assert d[0, 1] == -1.0  # x neighbour
        assert d[0, 3] == -0.1  # y neighbour


class TestElasticity:
    def test_shape_is_3n(self):
        m = elasticity3d(2)
        assert m.shape == (24, 24)

    def test_spd(self):
        assert_spd_lower(elasticity3d(3, seed=1))

    def test_deterministic(self):
        a = elasticity3d(2, seed=5).to_dense()
        b = elasticity3d(2, seed=5).to_dense()
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_values(self):
        a = elasticity3d(2, seed=5).to_dense()
        b = elasticity3d(2, seed=6).to_dense()
        assert not np.array_equal(a, b)

    def test_block_structure(self):
        """Vertex-diagonal 3x3 blocks are fully populated."""
        d = full_symmetric_from_lower(elasticity3d(2, seed=0)).to_dense()
        blk = d[:3, :3]
        np.testing.assert_allclose(blk, blk.T)
        assert np.all(np.diag(blk) > 0)

    def test_invalid_coupling(self):
        with pytest.raises(ShapeError):
            elasticity3d(2, coupling=0.0)


class TestRandomSPD:
    def test_spd(self):
        assert_spd_lower(random_spd_sparse(30, avg_degree=4, seed=3))

    def test_deterministic(self):
        a = random_spd_sparse(20, seed=1).to_dense()
        b = random_spd_sparse(20, seed=1).to_dense()
        np.testing.assert_array_equal(a, b)

    def test_degree_scaling(self):
        sparse = random_spd_sparse(100, avg_degree=2, seed=2)
        dense = random_spd_sparse(100, avg_degree=8, seed=2)
        assert dense.nnz > sparse.nnz

    def test_n1(self):
        m = random_spd_sparse(1, seed=0)
        assert m.shape == (1, 1)
        assert m.to_dense()[0, 0] > 0

    def test_pattern_no_self_loops(self):
        hi, lo = random_sym_pattern(50, 4.0, seed=7)
        assert np.all(hi > lo)

    def test_pattern_unique(self):
        hi, lo = random_sym_pattern(50, 6.0, seed=8)
        keys = hi * 50 + lo
        assert np.unique(keys).size == keys.size

    def test_pattern_invalid(self):
        with pytest.raises(ShapeError):
            random_sym_pattern(0, 1.0)
        with pytest.raises(ShapeError):
            random_sym_pattern(5, -1.0)


class TestPaperSuite:
    def test_suite_nonempty_and_named(self):
        suite = paper_suite()
        assert len(suite) >= 8
        names = [m.name for m in suite]
        assert len(set(names)) == len(names)

    def test_all_build_spd(self):
        for m in paper_suite():
            lower = m.build()
            assert lower.shape[0] == lower.shape[1]
            # cheap SPD proxy for larger instances: positive diagonal and
            # symmetric storage; full eigen check for the smallest only.
            assert np.all(lower.diagonal() > 0)

    def test_smallest_instances_truly_spd(self):
        assert_spd_lower(get_paper_matrix("cube-s").build())
        assert_spd_lower(get_paper_matrix("elast-s").build())

    def test_get_by_name(self):
        m = get_paper_matrix("cube-m")
        assert m.name == "cube-m"

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get_paper_matrix("nope")

    def test_archetypes_cover_2d_and_3d(self):
        suite = paper_suite()
        assert any("2D" in m.archetype for m in suite)
        assert any("3D" in m.archetype for m in suite)
