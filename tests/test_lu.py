"""Tests for the unsymmetric multifrontal LU path."""

import numpy as np
import pytest
import scipy.linalg

from repro.core import UnsymmetricSolver
from repro.gen import convection_diffusion2d, grid2d_laplacian
from repro.sparse import CSCMatrix
from repro.sparse.ops import full_symmetric_from_lower
from repro.util.errors import ShapeError, SingularMatrixError
from repro.util.rng import make_rng


def random_dd_unsym(n, seed, density=0.2):
    """Random row-diagonally-dominant unsymmetric matrix (dense built)."""
    rng = make_rng(seed)
    a = rng.standard_normal((n, n))
    mask = rng.random((n, n)) < density
    np.fill_diagonal(mask, False)
    a = a * mask
    d = np.abs(a).sum(axis=1) + 1.0
    np.fill_diagonal(a, d)
    return a


class TestConvectionGenerator:
    def test_structurally_symmetric_numerically_not(self):
        a = convection_diffusion2d(5, peclet=1.0)
        dense = a.to_dense()
        assert not np.allclose(dense, dense.T)
        assert np.all((dense != 0) == (dense != 0).T)

    def test_zero_peclet_is_laplacian(self):
        a = convection_diffusion2d(4, peclet=0.0)
        lap = full_symmetric_from_lower(grid2d_laplacian(4)).to_dense()
        np.testing.assert_allclose(a.to_dense(), lap)

    def test_row_diagonal_dominance(self):
        dense = convection_diffusion2d(6, wind=(2.0, -1.0), peclet=2.0).to_dense()
        off = np.abs(dense).sum(axis=1) - np.abs(np.diag(dense))
        assert np.all(np.diag(dense) >= off - 1e-12)

    def test_validation(self):
        with pytest.raises(ShapeError):
            convection_diffusion2d(0)
        with pytest.raises(ShapeError):
            convection_diffusion2d(3, peclet=-1)


class TestLUFactorization:
    def test_reconstruction_against_dense(self):
        a = convection_diffusion2d(5, peclet=1.0)
        solver = UnsymmetricSolver(a)
        factor = solver.factor()
        l, u = factor.to_dense_lu()
        perm = factor.sym.perm
        dense = a.to_dense()[np.ix_(perm, perm)]
        np.testing.assert_allclose(l @ u, dense, rtol=1e-9, atol=1e-9)

    def test_unit_lower_and_upper(self):
        a = convection_diffusion2d(4, peclet=0.7)
        solver = UnsymmetricSolver(a)
        l, u = solver.factor().to_dense_lu()
        np.testing.assert_allclose(np.diag(l), 1.0)
        assert np.allclose(np.triu(l, 1), 0)
        assert np.allclose(np.tril(u, -1), 0)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_dd_matrices(self, seed):
        dense = random_dd_unsym(25, seed)
        a = CSCMatrix.from_dense(dense)
        solver = UnsymmetricSolver(a)
        factor = solver.factor()
        l, u = factor.to_dense_lu()
        perm = factor.sym.perm
        np.testing.assert_allclose(
            l @ u, dense[np.ix_(perm, perm)], rtol=1e-8, atol=1e-8
        )

    def test_zero_pivot_raises(self):
        dense = np.array([[0.0, 1.0], [1.0, 1.0]])
        solver = UnsymmetricSolver(CSCMatrix.from_dense(dense), ordering=np.arange(2))
        with pytest.raises(SingularMatrixError):
            solver.factor()

    def test_static_perturbation_recovers(self):
        dense = np.array(
            [[1e-14, 1.0, 0.0], [1.0, 3.0, 0.5], [0.0, 0.5, 2.0]]
        )
        a = CSCMatrix.from_dense(dense)
        solver = UnsymmetricSolver(
            a, ordering=np.arange(3), pivot_perturbation=1e-8
        )
        solver.factor()
        assert len(solver.perturbed_columns) == 1
        x_true = np.array([1.0, -2.0, 0.5])
        b = dense @ x_true
        res = solver.solve(b, max_iter=40, tol=1e-12)
        np.testing.assert_allclose(res.x, x_true, rtol=1e-6)

    def test_flops_double_cholesky(self):
        a = convection_diffusion2d(5, peclet=0.3)
        solver = UnsymmetricSolver(a)
        factor = solver.factor()
        assert factor.stats.flops > 0
        assert factor.stats.n_fronts == factor.sym.n_supernodes


class TestLUSolve:
    @pytest.mark.parametrize("nx", [3, 5, 8])
    def test_solve_matches_numpy(self, nx):
        a = convection_diffusion2d(nx, wind=(1.0, -0.5), peclet=1.5)
        dense = a.to_dense()
        b = make_rng(4).standard_normal(nx * nx)
        solver = UnsymmetricSolver(a)
        res = solver.solve(b)
        np.testing.assert_allclose(res.x, np.linalg.solve(dense, b), rtol=1e-8)
        assert res.residual <= 1e-12

    def test_refinement_counts(self):
        a = convection_diffusion2d(5)
        b = np.ones(25)
        res = UnsymmetricSolver(a).solve(b)
        assert res.refinement_iterations >= 0

    def test_no_refine(self):
        a = convection_diffusion2d(4)
        res = UnsymmetricSolver(a).solve(np.ones(16), refine=False)
        assert res.refinement_iterations == 0
        assert res.residual < 1e-10

    def test_zero_rhs(self):
        a = convection_diffusion2d(3)
        res = UnsymmetricSolver(a).solve(np.zeros(9))
        np.testing.assert_array_equal(res.x, np.zeros(9))

    def test_solve_wrong_shape(self):
        solver = UnsymmetricSolver(convection_diffusion2d(3))
        with pytest.raises(ShapeError):
            solver.solve(np.ones(5))

    def test_explicit_ordering(self):
        a = convection_diffusion2d(4)
        solver = UnsymmetricSolver(a, ordering=np.arange(16))
        res = solver.solve(np.ones(16))
        assert res.residual <= 1e-12

    @pytest.mark.parametrize("ordering", ["nd", "amd", "natural"])
    def test_ordering_names(self, ordering):
        a = convection_diffusion2d(4, peclet=0.8)
        res = UnsymmetricSolver(a, ordering=ordering).solve(np.ones(16))
        assert res.residual <= 1e-12

    def test_scipy_lu_cross_check(self):
        """Our no-pivot LU on a DD matrix must solve as accurately as
        scipy's pivoted LU."""
        dense = random_dd_unsym(30, seed=7)
        b = make_rng(8).standard_normal(30)
        ours = UnsymmetricSolver(CSCMatrix.from_dense(dense)).solve(b)
        lu, piv = scipy.linalg.lu_factor(dense)
        x_ref = scipy.linalg.lu_solve((lu, piv), b)
        np.testing.assert_allclose(ours.x, x_ref, rtol=1e-8)

    def test_rectangular_rejected(self):
        with pytest.raises(ShapeError):
            UnsymmetricSolver(CSCMatrix.from_dense(np.ones((2, 3))))
