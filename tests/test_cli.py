"""Tests for the command-line interface."""

import pytest

from repro.cli import main, _parse_ranks, build_matrix, MESH_KINDS
from repro.sparse.io_mm import write_matrix_market
from repro.sparse.convert import csc_to_coo
from repro.gen import grid2d_laplacian
from repro.util.errors import ShapeError


class TestParsing:
    def test_parse_ranks(self):
        assert _parse_ranks("1,2,8") == [1, 2, 8]

    def test_parse_ranks_bad(self):
        with pytest.raises(ShapeError):
            _parse_ranks("1,x")
        with pytest.raises(ShapeError):
            _parse_ranks("0,2")
        with pytest.raises(ShapeError):
            _parse_ranks("")

    def test_build_matrix_mesh(self):
        class A:
            matrix = None
            mesh = "cube:3"

        m = build_matrix(A())
        assert m.shape == (27, 27)

    def test_build_matrix_bad_spec(self):
        class A:
            matrix = None
            mesh = "cube12"

        with pytest.raises(ShapeError):
            build_matrix(A())

    def test_build_matrix_unknown_kind(self):
        class A:
            matrix = None
            mesh = "torus:3"

        with pytest.raises(ShapeError):
            build_matrix(A())

    def test_build_matrix_neither(self):
        class A:
            matrix = None
            mesh = None

        with pytest.raises(ShapeError):
            build_matrix(A())

    def test_all_mesh_kinds_build(self):
        for kind in MESH_KINDS:
            size = 16 if kind in ("random", "unstructured") else 3

            class A:
                matrix = None
                mesh = f"{kind}:{size}"

            m = build_matrix(A())
            assert m.shape[0] >= 9


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--mesh", "cube:4"]) == 0
        out = capsys.readouterr().out
        assert "nnz(L)" in out and "supernodes" in out

    def test_solve_ones(self, capsys):
        assert main(["solve", "--mesh", "plate:6"]) == 0
        assert "residual" in capsys.readouterr().out

    def test_solve_random_with_condest(self, capsys):
        rc = main(
            ["solve", "--mesh", "plate:5", "--rhs", "random", "--condest"]
        )
        assert rc == 0
        assert "condition estimate" in capsys.readouterr().out

    def test_solve_no_refine(self, capsys):
        assert main(["solve", "--mesh", "plate:5", "--no-refine"]) == 0

    def test_solve_ldlt(self, capsys):
        assert main(["solve", "--mesh", "cube:3", "--method", "ldlt"]) == 0

    def test_scale(self, capsys):
        rc = main(
            ["scale", "--mesh", "cube:4", "--ranks", "1,2,4", "--nb", "8"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "strong scaling" in out and "Gflop/s" in out

    def test_scale_policy_1d(self, capsys):
        rc = main(
            [
                "scale",
                "--mesh",
                "plate:6",
                "--ranks",
                "1,2",
                "--policy",
                "1d",
                "--machine",
                "bluegene-p",
            ]
        )
        assert rc == 0

    def test_compare(self, capsys):
        rc = main(["compare", "--mesh", "cube:4", "--ranks", "2,4", "--nb", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "wsmp-like" in out and "mumps-like" in out

    def test_suite(self, capsys):
        assert main(["suite"]) == 0
        assert "cube-s" in capsys.readouterr().out

    def test_matrix_file(self, tmp_path, capsys):
        lower = grid2d_laplacian(4)
        path = tmp_path / "m.mtx"
        write_matrix_market(path, csc_to_coo(lower), symmetric=True)
        assert main(["info", "--matrix", str(path)]) == 0
        assert main(["solve", "--matrix", str(path)]) == 0

    def test_missing_file_error(self, capsys):
        rc = main(["info", "--matrix", "/nonexistent.mtx"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_bad_mesh_error(self, capsys):
        rc = main(["info", "--mesh", "nope:3"])
        assert rc == 2


class TestServeSim:
    def test_serve_sim_default(self, capsys):
        rc = main(["serve-sim", "--steps", "6", "--new-patterns", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "analysis cache" in out and "jobs/s" in out

    def test_serve_sim_no_cache(self, capsys):
        rc = main(
            ["serve-sim", "--steps", "4", "--new-patterns", "0", "--no-cache"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cache off" in out and "analysis cache" not in out

    def test_serve_sim_parallel(self, capsys):
        rc = main(
            [
                "serve-sim",
                "--mesh",
                "cube:3",
                "--steps",
                "3",
                "--new-patterns",
                "0",
                "--ranks-served",
                "2",
                "--nb",
                "8",
            ]
        )
        assert rc == 0
        assert "jobs_completed" in capsys.readouterr().out


class TestLUCli:
    def test_convdiff_auto_lu(self, capsys):
        assert main(["solve", "--mesh", "convdiff:6"]) == 0
        assert "solver=lu" in capsys.readouterr().out

    def test_explicit_lu_flag(self, capsys):
        assert main(["solve", "--mesh", "plate:5", "--lu"]) == 0
        assert "solver=lu" in capsys.readouterr().out

    def test_lu_no_refine(self, capsys):
        assert main(["solve", "--mesh", "convdiff:5", "--no-refine"]) == 0
