"""Mixed-precision fronts and refinement robustness.

Covers the fp32 working-precision regime end to end — factor storage,
solve-phase dtype discipline, fp64-recovering iterative refinement, the
seq/threads bitwise contract at reduced precision, refinement divergence
handling (non-finite and growing residuals, best-so-far iterates), the
normwise backward-error stopping test, and the service's fp32→fp64
degradation ladder.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SparseSolver
from repro.core.solver import SolveResult
from repro.exec import multifrontal_factor_threads, solve_many_threads
from repro.gen.grids import grid2d_laplacian, grid3d_laplacian
from repro.graph import AdjacencyGraph
from repro.mf.numeric import multifrontal_factor
from repro.mf.refine import (
    iterative_refinement,
    iterative_refinement_many,
)
from repro.mf.solve_phase import solve, solve_many
from repro.ordering import amd_order
from repro.service import ServiceConfig, SolverService
from repro.sparse.coo import COOMatrix
from repro.sparse.convert import coo_to_csc
from repro.sparse.ops import sym_norm_inf_lower
from repro.symbolic import analyze
from repro.util.errors import ShapeError
from repro.util.rng import make_rng
from repro.util.validation import work_dtype

pytestmark = pytest.mark.precision


def analyzed(lower):
    g = AdjacencyGraph.from_symmetric_lower(lower)
    return analyze(lower, amd_order(g))


def hilbert_lower(n: int):
    """Lower triangle of the n×n Hilbert matrix — SPD with condition
    number ~e^{3.5n}; n=8 is factorable in fp32 but stalls fp32-factor
    refinement, the canonical degradation-ladder trigger."""
    r, c, v = [], [], []
    for i in range(n):
        for j in range(i + 1):
            r.append(i)
            c.append(j)
            v.append(1.0 / (i + j + 1))
    return coo_to_csc(
        COOMatrix(
            (n, n),
            np.asarray(r, dtype=np.int64),
            np.asarray(c, dtype=np.int64),
            np.asarray(v, dtype=np.float64),
        )
    )


def berr(lower, x, b):
    """Normwise backward error ‖b−Ax‖∞/(‖A‖∞‖x‖∞+‖b‖∞), per column."""
    from repro.sparse.ops import sym_matvec_lower_many

    x2 = x[:, None] if x.ndim == 1 else x
    b2 = b[:, None] if b.ndim == 1 else b
    r = b2 - sym_matvec_lower_many(lower, x2)
    anorm = sym_norm_inf_lower(lower)
    denom = anorm * np.max(np.abs(x2), axis=0) + np.max(np.abs(b2), axis=0)
    return np.max(np.abs(r), axis=0) / denom


class TestWorkDtype:
    def test_known_precisions(self):
        assert work_dtype("fp64") == np.float64
        assert work_dtype("fp32") == np.float32

    def test_unknown_precision_rejected(self):
        with pytest.raises(ShapeError):
            work_dtype("fp16")


class TestFp32Factor:
    @pytest.mark.parametrize("method", ["cholesky", "ldlt"])
    def test_blocks_are_fp32_and_half_size(self, method):
        sym = analyzed(grid2d_laplacian(12))
        f64 = multifrontal_factor(sym, method=method)
        f32 = multifrontal_factor(sym, method=method, precision="fp32")
        assert f32.precision == "fp32" and f32.dtype == np.float32
        assert all(blk.dtype == np.float32 for blk in f32.blocks)
        bytes64 = sum(blk.nbytes for blk in f64.blocks)
        bytes32 = sum(blk.nbytes for blk in f32.blocks)
        assert bytes64 == 2 * bytes32
        if method == "ldlt":
            assert f32.diag.dtype == np.float32

    def test_unknown_precision_rejected(self):
        sym = analyzed(grid2d_laplacian(4))
        with pytest.raises(ShapeError):
            multifrontal_factor(sym, precision="fp16")

    @pytest.mark.parametrize("method", ["cholesky", "ldlt"])
    def test_threads_factor_bitwise_identical(self, method):
        sym = analyzed(grid3d_laplacian(5))
        ref = multifrontal_factor(sym, method=method, precision="fp32")
        for workers in (1, 3):
            got = multifrontal_factor_threads(
                sym, method=method, precision="fp32", workers=workers
            )
            assert got.precision == "fp32"
            for a, b in zip(ref.blocks, got.blocks):
                assert a.dtype == b.dtype == np.float32
                assert np.array_equal(a, b)
            if method == "ldlt":
                assert np.array_equal(ref.diag, got.diag)

    def test_solve_returns_fp64(self):
        sym = analyzed(grid2d_laplacian(10))
        f32 = multifrontal_factor(sym, precision="fp32")
        rng = make_rng(0)
        b = rng.standard_normal((sym.n, 3))
        x = solve_many(f32, b)
        assert x.dtype == np.float64
        assert solve(f32, b[:, 0]).dtype == np.float64

    def test_threads_solve_bitwise_identical(self):
        sym = analyzed(grid2d_laplacian(11))
        f32 = multifrontal_factor(sym, precision="fp32")
        rng = make_rng(1)
        b = rng.standard_normal((sym.n, 4))
        ref = solve_many(f32, b)
        for workers in (1, 4):
            assert np.array_equal(
                ref, solve_many_threads(f32, b, workers=workers)
            )


class TestFp32Refinement:
    @pytest.mark.parametrize("method", ["cholesky", "ldlt"])
    def test_recovers_fp64_backward_error(self, method):
        # The acceptance gate: fp32 factor + fp64 refinement reaches
        # normwise backward error <= 1e-12 on well-conditioned SPD input.
        lower = grid3d_laplacian(6)
        sym = analyzed(lower)
        f32 = multifrontal_factor(sym, method=method, precision="fp32")
        rng = make_rng(2)
        b = rng.standard_normal((sym.n, 3))
        res = iterative_refinement_many(f32, lower, b, tol=1e-12)
        assert bool(np.all(res.converged))
        assert not np.any(res.diverged)
        assert np.all(res.backward_error <= 1e-12)
        # and the result really is fp64-accurate, measured independently
        assert np.all(berr(lower, res.x, b) <= 1e-12)

    def test_panel_bitwise_identical_to_scalar(self):
        lower = grid2d_laplacian(9)
        sym = analyzed(lower)
        f32 = multifrontal_factor(sym, precision="fp32")
        rng = make_rng(3)
        b = rng.standard_normal((sym.n, 5))
        panel = iterative_refinement_many(f32, lower, b)
        for j in range(b.shape[1]):
            single = iterative_refinement(f32, lower, b[:, j])
            assert np.array_equal(panel.x[:, j], single.x)
            assert panel.residual_history[j] == single.residual_history
            assert bool(panel.diverged[j]) == single.diverged

    def test_refinement_trajectory_identical_across_backends(self):
        lower = grid2d_laplacian(10)
        sym = analyzed(lower)
        f32 = multifrontal_factor(sym, precision="fp32")
        rng = make_rng(4)
        b = rng.standard_normal((sym.n, 3))
        seq = iterative_refinement_many(f32, lower, b)
        thr = iterative_refinement_many(
            f32,
            lower,
            b,
            solve_fn=lambda fac, rhs: solve_many_threads(fac, rhs, workers=3),
        )
        assert np.array_equal(seq.x, thr.x)
        assert seq.residual_history == thr.residual_history
        assert np.array_equal(seq.iterations, thr.iterations)


class TestRefinementRobustness:
    def test_zero_rhs_column_converges_with_zero_solution(self):
        lower = grid2d_laplacian(8)
        sym = analyzed(lower)
        f = multifrontal_factor(sym)
        rng = make_rng(5)
        b = rng.standard_normal((sym.n, 3))
        b[:, 1] = 0.0
        res = iterative_refinement_many(f, lower, b)
        assert bool(res.converged[1]) and not bool(res.diverged[1])
        assert np.array_equal(res.x[:, 1], np.zeros(sym.n))
        assert res.residual_history[1] == (0.0,)
        assert res.backward_error[1] == 0.0

    def test_mixed_scale_columns(self):
        # The normwise test is per-column scale-invariant: wildly scaled
        # (but fp32-representable) right-hand sides in one panel must all
        # converge to the same backward-error level.
        lower = grid2d_laplacian(8)
        sym = analyzed(lower)
        f32 = multifrontal_factor(sym, precision="fp32")
        rng = make_rng(6)
        b = rng.standard_normal((sym.n, 3))
        b[:, 0] *= 1e30
        b[:, 2] *= 1e-30
        res = iterative_refinement_many(f32, lower, b, tol=1e-12)
        assert bool(np.all(res.converged))
        assert np.all(res.backward_error <= 1e-12)

    def test_fp32_overflow_column_diverges_without_poisoning_panel(self):
        # 1e100 is not representable in fp32: that column's direct solve
        # goes non-finite. It must be frozen as diverged (with the finite
        # zero fallback iterate) while its panel siblings still converge.
        lower = grid2d_laplacian(8)
        sym = analyzed(lower)
        f32 = multifrontal_factor(sym, precision="fp32")
        rng = make_rng(6)
        b = rng.standard_normal((sym.n, 3))
        b[:, 1] *= 1e100
        with np.errstate(over="ignore", invalid="ignore"):
            res = iterative_refinement_many(f32, lower, b, tol=1e-12)
        assert bool(res.diverged[1]) and not bool(res.converged[1])
        assert np.all(np.isfinite(res.x))
        assert res.backward_error[1] == 1.0  # the zero-vector fallback
        assert bool(res.converged[0]) and bool(res.converged[2])
        assert res.backward_error[0] <= 1e-12
        assert res.backward_error[2] <= 1e-12

    def test_nan_solve_reports_diverged_not_poisoned(self):
        # A solve that returns non-finite values (e.g. a broken factor)
        # must stop immediately, flag `diverged`, and hand back the
        # best-so-far iterate — never a NaN-filled x, and never loop to
        # max_iter pretending progress.
        lower = grid2d_laplacian(6)
        sym = analyzed(lower)
        f = multifrontal_factor(sym)
        rng = make_rng(7)
        b = rng.standard_normal((sym.n, 2))

        def nan_solve(factor, rhs):
            out = np.empty((factor.n, rhs.shape[1]))
            out.fill(np.nan)
            return out

        res = iterative_refinement_many(f, lower, b, solve_fn=nan_solve)
        assert bool(np.all(res.diverged))
        assert not np.any(res.converged)
        assert np.all(np.isfinite(res.x))
        assert np.all(np.isfinite(res.backward_error))
        # stopped at the first residual check, not after max_iter loops
        assert np.all(res.iterations == 0)

    def test_growing_residual_stops_early_with_best_iterate(self):
        # A solve that produces a good initial iterate but garbage
        # corrections: the backward error jumps by ~1e6, tripping the
        # growth guard. Refinement must stop early and hand back the good
        # first iterate, not the corrupted one.
        lower = grid2d_laplacian(6)
        sym = analyzed(lower)
        f = multifrontal_factor(sym)
        rng = make_rng(8)
        b = rng.standard_normal((lower.shape[0], 1))
        calls = {"n": 0}

        def flaky_solve(factor, rhs):
            out = solve_many(factor, rhs)
            if calls["n"]:
                out = out * 1e6  # corrections push x the wrong way
            calls["n"] += 1
            return out

        # tol=0.0 is unreachable, so refinement keeps iterating until the
        # first bad correction lands.
        res = iterative_refinement_many(
            f, lower, b, max_iter=10, tol=0.0, solve_fn=flaky_solve
        ).column(0)
        assert res.diverged and not res.converged
        assert res.iterations == 1  # stopped at the first bad iterate
        assert np.all(np.isfinite(res.x))
        # the returned iterate is the good initial solve, bitwise
        assert np.array_equal(res.x, solve(f, b[:, 0]))
        # the reported backward error matches an independent measurement…
        got = berr(lower, res.x, b[:, 0])
        assert got[0] == pytest.approx(res.backward_error, rel=1e-12)
        # …and is the best entry in the recorded history
        assert res.backward_error == min(res.residual_history)

    def test_max_iter_exhaustion_is_not_diverged(self):
        # Hilbert(8): fp32 factor refinement stalls around 1e-9 — it must
        # report converged=False, diverged=False (budget, not blow-up).
        lower = hilbert_lower(8)
        s = SparseSolver(lower, ordering="natural")
        s.factor(precision="fp32")
        rng = make_rng(9)
        b = rng.standard_normal(8)
        res = iterative_refinement(s.numeric, lower, b, tol=1e-12)
        assert not res.converged
        assert not res.diverged
        assert res.iterations == 5  # the default max_iter budget
        assert np.all(np.isfinite(res.x))

    def test_dense_kernels_accept_fp32_reject_mismatch(self):
        from repro.dense.chol import cholesky_in_place
        from repro.dense.trsm import solve_lower_inplace

        a32 = np.eye(4, dtype=np.float32) * 4.0
        cholesky_in_place(a32)
        assert a32.dtype == np.float32
        with pytest.raises(ShapeError):
            solve_lower_inplace(a32, np.ones(4))  # fp32 L vs fp64 rhs
        with pytest.raises(ShapeError):
            cholesky_in_place(np.eye(3, dtype=np.float16))


class TestSolverPrecision:
    def test_solver_fp32_reaches_tolerance(self):
        lower = grid3d_laplacian(5)
        s = SparseSolver(lower)
        s.factor(precision="fp32")
        rng = make_rng(10)
        res = s.solve(rng.standard_normal(lower.shape[0]))
        assert isinstance(res, SolveResult)
        assert res.precision == "fp32"
        assert res.residual <= 1e-12
        assert res.refinement_iterations >= 1

    def test_solver_auto_falls_back_to_fp64(self):
        lower = hilbert_lower(8)
        s = SparseSolver(lower, ordering="natural")
        s.factor(precision="fp32")
        rng = make_rng(11)
        res = s.solve(rng.standard_normal(8))
        assert res.precision == "fp64"
        assert s.numeric.precision == "fp64"

    def test_refactor_keeps_precision(self):
        lower = grid2d_laplacian(8)
        s = SparseSolver(lower)
        s.factor(precision="fp32")
        s.refactor(lower)
        assert s.numeric.precision == "fp32"
        s.refactor(lower, precision="fp64")
        assert s.numeric.precision == "fp64"

    def test_solver_rejects_unknown_precision(self):
        s = SparseSolver(grid2d_laplacian(4))
        with pytest.raises(ShapeError):
            s.factor(precision="double")


@pytest.mark.service
class TestServicePrecision:
    def test_fp32_request_completes_with_refinement(self):
        a = grid2d_laplacian(9)
        rng = make_rng(12)
        svc = SolverService(ServiceConfig())
        jid = svc.submit(a, rng.standard_normal(a.shape[0]), precision="fp32")
        res = svc.drain()[jid]
        assert res.ok and res.precision == "fp32"
        assert "factor_fp32" in res.timings

    def test_precision_is_part_of_batch_key(self):
        a = grid2d_laplacian(9)
        rng = make_rng(13)
        b = rng.standard_normal(a.shape[0])
        svc = SolverService(ServiceConfig())
        i32a = svc.submit(a, b, precision="fp32")
        i32b = svc.submit(a, b, precision="fp32")
        i64 = svc.submit(a, b)  # defaults to fp64
        res = svc.drain()
        assert res[i32a].batched_rhs == 2 and res[i32b].batched_rhs == 2
        assert res[i64].batched_rhs == 1
        assert res[i64].precision == "fp64"

    def test_stalled_fp32_degrades_to_fp64(self):
        svc = SolverService(
            ServiceConfig(precision="fp32", ordering="natural")
        )
        rng = make_rng(14)
        jid = svc.submit(hilbert_lower(8), rng.standard_normal(8))
        res = svc.drain()[jid]
        assert res.ok
        assert res.precision == "fp64"
        assert "factor_fp64" in res.timings  # the fallback re-factor ran
        assert svc.metrics.counter("service_precision_fallback_total") == 1

    def test_fp32_factor_breakdown_degrades_to_fp64(self):
        # Hilbert(10) has a pivot that is positive in fp64 but negative in
        # fp32: the fp32 factorization raises and the executor must walk
        # down to fp64 instead of retrying the deterministic failure.
        svc = SolverService(
            ServiceConfig(precision="fp32", ordering="natural")
        )
        rng = make_rng(15)
        jid = svc.submit(hilbert_lower(10), rng.standard_normal(10))
        res = svc.drain()[jid]
        assert res.ok
        assert res.precision == "fp64"
        assert res.retries == 0  # degraded, not retried
        assert svc.metrics.counter("service_precision_fallback_total") == 1

    def test_unknown_precision_rejected_at_submit(self):
        svc = SolverService(ServiceConfig())
        with pytest.raises(ShapeError):
            svc.submit(grid2d_laplacian(4), np.ones(16), precision="fp8")
