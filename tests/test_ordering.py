"""Tests for repro.ordering: validity, quality, and relative ranking."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gen import (
    grid2d_laplacian,
    grid3d_laplacian,
    random_spd_sparse,
)
from repro.graph import AdjacencyGraph
from repro.ordering import (
    natural_order,
    reverse_order,
    random_order,
    rcm_order,
    amd_order,
    nested_dissection_order,
    NDOptions,
    ordering_quality,
    get_ordering,
    ORDERINGS,
)
from repro.util.errors import OrderingError


def graph_of(lower):
    return AdjacencyGraph.from_symmetric_lower(lower)


def assert_valid_perm(perm, n):
    assert perm.shape == (n,)
    assert np.array_equal(np.sort(perm), np.arange(n))


ALL_ORDERINGS = [
    natural_order,
    reverse_order,
    random_order,
    rcm_order,
    amd_order,
    nested_dissection_order,
]


class TestPermValidity:
    @pytest.mark.parametrize("fn", ALL_ORDERINGS)
    def test_grid2d(self, fn):
        g = graph_of(grid2d_laplacian(5))
        assert_valid_perm(fn(g), g.n)

    @pytest.mark.parametrize("fn", ALL_ORDERINGS)
    def test_disconnected(self, fn):
        g = AdjacencyGraph.from_edges(7, [0, 2, 4], [1, 3, 5])
        assert_valid_perm(fn(g), 7)

    @pytest.mark.parametrize("fn", ALL_ORDERINGS)
    def test_no_edges(self, fn):
        g = AdjacencyGraph.from_edges(5, [], [])
        assert_valid_perm(fn(g), 5)

    @pytest.mark.parametrize("fn", ALL_ORDERINGS)
    def test_single_vertex(self, fn):
        g = AdjacencyGraph.from_edges(1, [], [])
        assert_valid_perm(fn(g), 1)

    @pytest.mark.parametrize("fn", [amd_order, nested_dissection_order, rcm_order])
    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 40), st.integers(0, 5000))
    def test_property_random_graphs(self, fn, n, seed):
        g = graph_of(random_spd_sparse(n, avg_degree=3, seed=seed))
        assert_valid_perm(fn(g), n)


class TestRCM:
    def test_reduces_bandwidth_vs_random(self):
        lower = grid2d_laplacian(8)
        g = graph_of(lower)
        rcm = rcm_order(g)
        rnd = random_order(g, seed=3)

        def bandwidth(perm):
            inv = np.empty(g.n, dtype=np.int64)
            inv[perm] = np.arange(g.n)
            bw = 0
            for u in range(g.n):
                for v in g.neighbors(u):
                    bw = max(bw, abs(int(inv[u]) - int(inv[v])))
            return bw

        assert bandwidth(rcm) < bandwidth(rnd)

    def test_path_graph_is_optimal(self):
        g = AdjacencyGraph.from_edges(6, np.arange(5), np.arange(1, 6))
        perm = rcm_order(g)
        # A path ordered by RCM is a contiguous walk: neighbours adjacent.
        inv = np.empty(6, dtype=np.int64)
        inv[perm] = np.arange(6)
        for u in range(5):
            assert abs(int(inv[u]) - int(inv[u + 1])) == 1


class TestAMD:
    def test_star_eliminates_leaves_first(self):
        # Star graph: center 0, leaves 1..5. MD eliminates leaves first;
        # once one leaf remains the center ties it at degree 1, so the
        # center may only appear in the last two positions.
        g = AdjacencyGraph.from_edges(6, [0] * 5, [1, 2, 3, 4, 5])
        perm = amd_order(g)
        assert 0 in perm[-2:]
        assert set(perm[:4].tolist()) <= {1, 2, 3, 4, 5}

    def test_quality_beats_natural_on_grid(self):
        lower = grid2d_laplacian(8)
        g = graph_of(lower)
        q_amd = ordering_quality(lower, amd_order(g))
        q_nat = ordering_quality(lower, natural_order(g))
        assert q_amd.factor_flops < q_nat.factor_flops

    def test_quality_close_to_scipy_free_reference(self):
        """AMD fill on a 2D grid should be far below banded (natural) fill."""
        lower = grid2d_laplacian(10)
        g = graph_of(lower)
        q_amd = ordering_quality(lower, amd_order(g))
        q_nat = ordering_quality(lower, natural_order(g))
        assert q_amd.nnz_factor < 0.8 * q_nat.nnz_factor

    def test_no_aggressive_absorption_still_valid(self):
        g = graph_of(grid2d_laplacian(6))
        assert_valid_perm(amd_order(g, aggressive=False), g.n)

    def test_tree_graph_no_fill(self):
        # Elimination of a tree in MD order produces zero fill.
        edges_a = [0, 0, 1, 1, 2, 2]
        edges_b = [1, 2, 3, 4, 5, 6]
        g = AdjacencyGraph.from_edges(7, edges_a, edges_b)
        lower = _unit_lower_from_graph(g)
        q = ordering_quality(lower, amd_order(g))
        assert q.nnz_factor == lower.nnz


def _unit_lower_from_graph(g):
    from repro.sparse import COOMatrix, coo_to_csc

    deg = np.diff(g.xadj)
    src = np.repeat(np.arange(g.n, dtype=np.int64), deg)
    keep = src > g.adjncy
    rows = np.concatenate([np.arange(g.n, dtype=np.int64), src[keep]])
    cols = np.concatenate([np.arange(g.n, dtype=np.int64), g.adjncy[keep]])
    vals = np.concatenate([np.full(g.n, 10.0), np.full(int(keep.sum()), -1.0)])
    return coo_to_csc(COOMatrix((g.n, g.n), rows, cols, vals))


class TestNestedDissection:
    def test_beats_natural_on_3d(self):
        lower = grid3d_laplacian(6)
        g = graph_of(lower)
        q_nd = ordering_quality(lower, nested_dissection_order(g))
        q_nat = ordering_quality(lower, natural_order(g))
        assert q_nd.factor_flops < q_nat.factor_flops

    def test_shorter_etree_than_amd_on_grid(self):
        """ND's balanced separators give shallower elimination trees — the
        property parallel factorization needs."""
        lower = grid2d_laplacian(12)
        g = graph_of(lower)
        q_nd = ordering_quality(lower, nested_dissection_order(g))
        q_amd = ordering_quality(lower, amd_order(g))
        assert q_nd.etree_height <= q_amd.etree_height * 1.5

    def test_leaf_size_option(self):
        g = graph_of(grid2d_laplacian(7))
        perm = nested_dissection_order(g, NDOptions(leaf_size=8))
        assert_valid_perm(perm, g.n)

    def test_max_depth_option(self):
        g = graph_of(grid2d_laplacian(7))
        perm = nested_dissection_order(g, NDOptions(max_depth=1))
        assert_valid_perm(perm, g.n)

    def test_separator_goes_last(self):
        """The top-level separator must occupy the tail of the permutation."""
        from repro.graph.bisection import bisect
        from repro.graph.separators import vertex_separator_from_bisection

        g = graph_of(grid2d_laplacian(8))
        perm = nested_dissection_order(g)
        side = bisect(g)
        _, _, sep = vertex_separator_from_bisection(g, side)
        tail = set(perm[-sep.size:].tolist())
        # Same bisection is deterministic, so the separator should be the tail.
        assert tail == set(sep.tolist())


class TestQualityMetrics:
    def test_dense_matrix_full_fill(self):
        from repro.sparse import CSCMatrix

        n = 5
        d = np.ones((n, n)) + np.eye(n) * n
        lower = CSCMatrix.from_dense(np.tril(d))
        q = ordering_quality(lower, np.arange(n))
        assert q.nnz_factor == n * (n + 1) // 2
        assert q.fill_ratio == 1.0

    def test_diagonal_matrix_no_fill(self):
        from repro.sparse import CSCMatrix

        lower = CSCMatrix.from_dense(np.eye(4) * 2)
        q = ordering_quality(lower, np.arange(4))
        assert q.nnz_factor == 4
        assert q.factor_flops == 0
        assert q.etree_height == 1

    def test_fill_matches_scipy_oracle(self):
        """nnz(L) for natural order must match a dense Cholesky's nnz."""
        import scipy.linalg

        from repro.sparse.ops import full_symmetric_from_lower

        lower = grid2d_laplacian(5)
        q = ordering_quality(lower, np.arange(25))
        full = full_symmetric_from_lower(lower).to_dense()
        chol = scipy.linalg.cholesky(full, lower=True)
        chol[np.abs(chol) < 1e-12] = 0.0
        # Structural count >= numeric count (exact cancellation aside).
        assert q.nnz_factor >= np.count_nonzero(chol)
        # For a grid Laplacian no lucky cancellation occurs.
        assert q.nnz_factor == np.count_nonzero(chol)


class TestRegistry:
    def test_all_names_resolve(self):
        for name in ORDERINGS:
            fn = get_ordering(name)
            g = graph_of(grid2d_laplacian(4))
            assert_valid_perm(fn(g), g.n)

    def test_unknown_name(self):
        with pytest.raises(OrderingError):
            get_ordering("metis")
