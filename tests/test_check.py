"""Tests for repro.check: the lint rules, the comm race/deadlock detector,
and the debug-mode invariant sanitizer."""

import io

import numpy as np
import pytest

from repro.check import commcheck, lint, sanitize
from repro.check.selftest import run_self_test
from repro.cli import main as cli_main
from repro.gen import grid2d_laplacian
from repro.graph import AdjacencyGraph
from repro.machine import GENERIC_CLUSTER
from repro.ordering import nested_dissection_order
from repro.parallel import PlanOptions, simulate_factorization
from repro.simmpi import CommTrace, MessageLedger, Simulator, tag_key
from repro.symbolic import analyze
from repro.util.errors import InvariantError, SimulationError
from repro.util.validation import runtime_checks_enabled

pytestmark = pytest.mark.check


def analyzed_grid(n=6):
    lower = grid2d_laplacian(n)
    perm = nested_dissection_order(AdjacencyGraph.from_symmetric_lower(lower))
    return lower, analyze(lower, perm)


# -- lint --------------------------------------------------------------------


class TestLintRules:
    def run(self, source, module="repro.mf.fixture", path="<test>"):
        return lint.lint_source(source, path=path, module=module)

    def codes(self, source, **kw):
        return [f.rule for f in self.run(source, **kw)]

    def test_rp001_bare_except(self):
        src = "try:\n    f()\nexcept:\n    pass\n"
        assert "RP001" in self.codes(src)

    def test_rp001_swallowed_exception(self):
        src = "try:\n    f()\nexcept Exception:\n    log()\n"
        assert "RP001" in self.codes(src)

    def test_rp001_reraise_is_clean(self):
        src = "try:\n    f()\nexcept Exception:\n    raise\n"
        assert "RP001" not in self.codes(src)

    def test_rp001_typed_catch_is_clean(self):
        src = "try:\n    f()\nexcept ValueError:\n    g()\n"
        assert "RP001" not in self.codes(src)

    def test_rp002_index_mutation_outside_sparse(self):
        src = "def f(m):\n    m.indptr[0] = 3\n"
        assert "RP002" in self.codes(src, module="repro.mf.fixture")

    def test_rp002_allowed_inside_repro_sparse(self):
        src = "def f(m):\n    m.indptr[0] = 3\n"
        assert "RP002" not in self.codes(src, module="repro.sparse.fixture")

    def test_rp002_self_attribute_construction_exempt(self):
        src = "class C:\n    def __init__(self, p):\n        self.indptr = p\n"
        assert "RP002" not in self.codes(src)

    def test_rp003_narrow_dtype_in_kernel(self):
        src = "import numpy as np\n\ndef f():\n    return np.zeros(4, dtype=np.int32)\n"
        assert "RP003" in self.codes(src, module="repro.sparse.fixture")

    def test_rp003_canonical_dtypes_allowed(self):
        src = (
            "import numpy as np\n\n"
            "def f():\n"
            "    a = np.zeros(4, dtype=np.int64)\n"
            "    b = np.zeros(4, dtype=np.float64)\n"
            "    c = np.zeros(4, dtype=bool)\n"
            "    return a, b, c\n"
        )
        assert "RP003" not in self.codes(src, module="repro.sparse.fixture")

    def test_rp004_print_in_library(self):
        src = "def f(x):\n    print(x)\n"
        assert "RP004" in self.codes(src)

    def test_rp004_print_allowed_in_cli(self):
        src = "def f(x):\n    print(x)\n"
        assert "RP004" not in self.codes(src, module="repro.cli")

    def test_rp005_init_without_all(self):
        src = "from repro.util.errors import ReproError\n"
        found = self.codes(src, module="repro.fixture", path="fixture/__init__.py")
        assert "RP005" in found

    def test_rp005_init_with_all_is_clean(self):
        src = (
            "from repro.util.errors import ReproError\n\n"
            '__all__ = ["ReproError"]\n'
        )
        found = self.codes(src, module="repro.fixture", path="fixture/__init__.py")
        assert "RP005" not in found

    def test_rp006_unused_import(self):
        src = "import os\n\n\ndef f() -> int:\n    return 1\n"
        assert "RP006" in self.codes(src)

    def test_rp006_used_import_is_clean(self):
        src = "import os\n\n\ndef f() -> str:\n    return os.sep\n"
        assert "RP006" not in self.codes(src)

    def test_rp007_direct_perf_counter(self):
        src = (
            "import time\n\n\n"
            "def f() -> float:\n    return time.perf_counter()\n"
        )
        assert "RP007" in self.codes(src)

    def test_rp007_bare_name_and_ns_variant(self):
        src = (
            "from time import perf_counter, perf_counter_ns\n\n\n"
            "def f() -> float:\n    return perf_counter() + perf_counter_ns()\n"
        )
        assert self.codes(src).count("RP007") == 2

    def test_rp007_exempts_timing_and_obs(self):
        src = "import time\n\n\ndef f() -> float:\n    return time.perf_counter()\n"
        assert "RP007" not in self.codes(src, module="repro.util.timing")
        assert "RP007" not in self.codes(src, module="repro.obs.spans")

    def test_rp007_skips_non_repro_code(self):
        src = "import time\n\nt = time.perf_counter()\n"
        assert "RP007" not in self.codes(src, module="")

    def test_noqa_suppression(self):
        src = "def f(x):\n    print(x)  # repro: noqa[RP004]\n"
        assert self.run(src) == []

    def test_noqa_with_other_id_does_not_suppress(self):
        src = "def f(x):\n    print(x)  # repro: noqa[RP001]\n"
        assert "RP004" in self.codes(src)

    def test_findings_carry_location(self):
        src = "def f(x):\n    print(x)\n"
        (finding,) = self.run(src)
        assert finding.line == 2
        assert finding.path == "<test>"


class TestLintRepo:
    def test_repo_is_lint_clean(self):
        findings = lint.lint_paths(["src/repro"])
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_cli_exit_zero_on_clean_tree(self):
        assert cli_main(["check", "--lint", "src/repro"]) == 0

    def test_cli_exit_nonzero_on_seeded_violation(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "mf" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("try:\n    f()\nexcept:\n    pass\n")
        rc = cli_main(["check", "--lint", str(bad)])
        assert rc == 1
        assert "RP001" in capsys.readouterr().out


# -- commcheck ---------------------------------------------------------------


def deadlock_trace():
    t = CommTrace()
    t.add("block", 0.0, rank=0, peer=1, tag="t")
    t.add("block", 0.0, rank=1, peer=0, tag="t")
    return t


class TestCommCheck:
    def test_deadlock_cycle_detected(self):
        report = commcheck.check_trace(deadlock_trace())
        assert not report.ok
        assert any(f.code == "deadlock" for f in report.errors)

    def test_lost_message_detected(self):
        t = CommTrace()
        t.add("send", 0.0, rank=0, peer=1, tag="t", nbytes=64)
        report = commcheck.check_trace(t)
        assert any(f.code == "unmatched-send" for f in report.errors)

    def test_recv_without_send_detected(self):
        t = CommTrace()
        t.add("recv", 1.0, rank=1, peer=0, tag="t", nbytes=64)
        report = commcheck.check_trace(t)
        assert any(f.code == "unmatched-recv" for f in report.errors)

    def test_race_is_warning_not_error(self):
        t = CommTrace()
        t.add("send", 0.0, rank=0, peer=2, tag="t", nbytes=64)
        t.add("send", 0.5, rank=0, peer=2, tag="t", nbytes=64)
        t.add("recv", 1.0, rank=2, peer=0, tag="t", nbytes=64)
        t.add("recv", 2.0, rank=2, peer=0, tag="t", nbytes=64)
        report = commcheck.check_trace(t)
        assert report.ok
        assert any(f.code == "race" for f in report.warnings)

    def test_clean_trace_passes(self):
        t = CommTrace()
        t.add("send", 0.0, rank=0, peer=1, tag="t", nbytes=64)
        t.add("recv", 1.0, rank=1, peer=0, tag="t", nbytes=64)
        report = commcheck.check_trace(t)
        assert report.ok and not report.warnings

    def test_ledger_conservation_violation(self):
        ledger = MessageLedger(2)
        ledger.record_send(0, 1, 64, 1)
        # Receive never recorded: trace says delivered, ledger disagrees.
        t = CommTrace()
        t.add("send", 0.0, rank=0, peer=1, tag="t", nbytes=64)
        t.add("recv", 1.0, rank=1, peer=0, tag="t", nbytes=64)
        report = commcheck.check_trace(t, ledger=ledger)
        assert any(f.code == "conservation" for f in report.errors)

    def test_traced_simulation_is_clean(self):
        _, sym = analyzed_grid(8)
        res = simulate_factorization(
            sym, 4, GENERIC_CLUSTER, PlanOptions(nb=4), trace=True
        )
        report = commcheck.check_sim_result(res.sim)
        assert report.ok, report.summary()
        assert report.n_messages_matched > 0

    def test_untraced_result_is_rejected(self):
        _, sym = analyzed_grid(6)
        res = simulate_factorization(sym, 2, GENERIC_CLUSTER, PlanOptions(nb=4))
        with pytest.raises(SimulationError):
            commcheck.check_sim_result(res.sim)

    def test_jsonl_round_trip(self):
        t = CommTrace()
        t.add("send", 0.25, rank=0, peer=1, tag=("p2p", ("world",), 7), nbytes=128)
        t.add("recv", 0.75, rank=1, peer=0, tag=("p2p", ("world",), 7), nbytes=128)
        t.add("block", 0.5, rank=1, peer=0, tag="x")
        buf = io.StringIO()
        t.to_jsonl(buf)
        buf.seek(0)
        back = CommTrace.from_jsonl(buf)
        assert list(back) == list(t)

    def test_tag_key_canonicalizes(self):
        assert tag_key("t") == "t"
        assert tag_key(("p2p", 0, 1)) == repr(("p2p", 0, 1))


# -- ledger + scheduler teardown ---------------------------------------------


class TestLedgerVerify:
    def test_verify_passes_consistent_ledger(self):
        ledger = MessageLedger(2)
        ledger.record_send(0, 1, 64, 1)
        ledger.record_recv(1, 64)
        ledger.verify()

    def test_verify_flags_tampered_counts(self):
        ledger = MessageLedger(2)
        ledger.record_send(0, 1, 64, 1)
        with pytest.raises(SimulationError):
            ledger.verify()

    def test_scheduler_teardown_flags_unreceived_message(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(b"x" * 32, 1, "orphan")
            return comm.rank

        with sanitize.sanitized(True):
            with pytest.raises(SimulationError):
                Simulator(GENERIC_CLUSTER, 2).run(prog)

    def test_scheduler_teardown_passes_clean_program(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(b"x" * 32, 1, "t")
            elif comm.rank == 1:
                yield comm.recv(0, "t")
            return comm.rank

        with sanitize.sanitized(True):
            result = Simulator(GENERIC_CLUSTER, 2).run(prog)
        assert result.ledger.n_messages == 1


# -- sanitizer ---------------------------------------------------------------


class _Duck:
    def __init__(self, **kw):
        self.__dict__.update(kw)


def duck_csc(shape, indptr, indices, data):
    return _Duck(
        shape=shape,
        indptr=np.asarray(indptr, dtype=np.int64),
        indices=np.asarray(indices, dtype=np.int64),
        data=np.asarray(data, dtype=np.float64),
    )


class TestSanitizer:
    def test_well_formed_csc_accepted(self):
        sanitize.check_csc(duck_csc((2, 2), [0, 2, 3], [0, 1, 1], [1.0, 2.0, 3.0]))

    def test_unsorted_indices_rejected(self):
        with pytest.raises(InvariantError):
            sanitize.check_csc(
                duck_csc((3, 2), [0, 2, 3], [2, 0, 1], [1.0, 2.0, 3.0])
            )

    def test_ragged_indptr_rejected(self):
        with pytest.raises(InvariantError):
            sanitize.check_csc(
                duck_csc((2, 2), [0, 5, 3], [0, 1, 1], [1.0, 2.0, 3.0])
            )

    def test_nonfinite_data_rejected(self):
        with pytest.raises(InvariantError):
            sanitize.check_csc(
                duck_csc((2, 2), [0, 2, 3], [0, 1, 1], [1.0, np.nan, 3.0])
            )

    def test_cyclic_etree_rejected(self):
        with pytest.raises(InvariantError):
            sanitize.check_etree(np.asarray([1, 2, 0], dtype=np.int64))

    def test_valid_etree_accepted(self):
        sanitize.check_etree(np.asarray([1, 2, -1], dtype=np.int64))

    def test_non_postordered_rejected(self):
        with pytest.raises(InvariantError):
            sanitize.check_postordered(np.asarray([-1, 0], dtype=np.int64))

    def test_invalid_permutation_rejected(self):
        with pytest.raises(InvariantError):
            sanitize.check_permutation(np.asarray([0, 0, 2], dtype=np.int64), 3)

    def test_partition_must_cover_columns(self):
        part = _Duck(
            sn_start=np.asarray([0, 2], dtype=np.int64),
            col_to_sn=np.asarray([0, 0], dtype=np.int64),
        )
        with pytest.raises(InvariantError):
            sanitize.check_partition(part, 3)

    def test_frontal_stack_leak_rejected(self):
        with pytest.raises(InvariantError):
            sanitize.check_frontal_balance(128, {})

    def test_symbolic_factor_passes(self):
        _, sym = analyzed_grid(6)
        sanitize.check_symbolic(sym)

    def test_corrupted_symbolic_factor_rejected(self):
        _, sym = analyzed_grid(6)
        sym.partition.sn_start[-1] += 1  # break partition coverage
        with pytest.raises(InvariantError):
            sanitize.check_symbolic(sym)

    def test_sanitized_context_toggles_flag(self):
        before = runtime_checks_enabled()
        with sanitize.sanitized(True):
            assert runtime_checks_enabled()
        assert runtime_checks_enabled() == before

    def test_end_to_end_factorization_under_sanitizer(self):
        from repro import SparseSolver

        lower = grid2d_laplacian(5)
        rng = np.random.default_rng(0)
        b = rng.standard_normal(lower.shape[0])
        with sanitize.sanitized(True):
            result = SparseSolver(lower).solve(b)
        assert np.all(np.isfinite(result.x))
        assert result.residual < 1e-8


# -- self-test ---------------------------------------------------------------


class TestSelfTest:
    def test_self_test_passes(self):
        results = run_self_test()
        failures = [r for r in results if not r.passed]
        assert not failures, "\n".join(r.format() for r in failures)

    def test_cli_self_test_exit_zero(self):
        assert cli_main(["check", "--self-test"]) == 0
