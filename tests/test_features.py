"""Tests for the extended solver features: Schur complements, condition
estimation, refactorization, the analytic performance model, tracing, and
the newer collectives."""

import numpy as np
import pytest

from repro.core import SparseSolver
from repro.gen import grid2d_laplacian, grid3d_laplacian, random_spd_sparse
from repro.graph import AdjacencyGraph
from repro.machine import BLUEGENE_P, GENERIC_CLUSTER
from repro.mf import condest, multifrontal_factor, schur_complement
from repro.mf.condest import onenorm_symmetric_lower, inverse_onenorm_estimate
from repro.mf.schur import split_symmetric_lower
from repro.analysis import (
    ascii_gantt,
    critical_rank,
    predict_factor_time,
    predict_scaling,
    rank_activity_table,
)
from repro.ordering import nested_dissection_order
from repro.parallel import FactorPlan, PlanOptions, simulate_factorization
from repro.parallel.factor_par import make_factor_program
from repro.simmpi import Simulator
from repro.sparse import CSCMatrix
from repro.sparse.ops import full_symmetric_from_lower
from repro.symbolic import analyze
from repro.util.errors import ReproError, ShapeError
from repro.util.rng import make_rng


def analyzed(lower):
    g = AdjacencyGraph.from_symmetric_lower(lower)
    return analyze(lower, nested_dissection_order(g))


class TestSchurComplement:
    def test_matches_dense_oracle(self):
        lower = grid2d_laplacian(6)
        full = full_symmetric_from_lower(lower).to_dense()
        schur_set = np.array([3, 10, 20, 35])
        s = schur_complement(lower, schur_set)
        interior = np.setdiff1d(np.arange(36), schur_set)
        a_bb = full[np.ix_(schur_set, schur_set)]
        a_bi = full[np.ix_(schur_set, interior)]
        a_ii = full[np.ix_(interior, interior)]
        expected = a_bb - a_bi @ np.linalg.solve(a_ii, a_bi.T)
        np.testing.assert_allclose(s, expected, rtol=1e-9, atol=1e-9)

    def test_symmetric_and_spd(self):
        lower = grid3d_laplacian(4)
        s = schur_complement(lower, np.arange(5))
        np.testing.assert_allclose(s, s.T)
        assert np.linalg.eigvalsh(s).min() > 0  # Schur of SPD is SPD

    def test_via_solver_api(self):
        lower = grid2d_laplacian(5)
        solver = SparseSolver(lower)
        s = solver.schur_complement([0, 24])
        assert s.shape == (2, 2)

    def test_split_blocks(self):
        lower = grid2d_laplacian(3)
        full = full_symmetric_from_lower(lower).to_dense()
        b = np.array([0, 4])
        a_ii, a_bi, a_bb = split_symmetric_lower(lower, b)
        i = np.setdiff1d(np.arange(9), b)
        np.testing.assert_allclose(
            full_symmetric_from_lower(a_ii).to_dense(), full[np.ix_(i, i)]
        )
        np.testing.assert_allclose(a_bi, full[np.ix_(b, i)])
        np.testing.assert_allclose(a_bb, full[np.ix_(b, b)])

    def test_validation(self):
        lower = grid2d_laplacian(3)
        with pytest.raises(ShapeError):
            split_symmetric_lower(lower, np.array([], dtype=np.int64))
        with pytest.raises(ShapeError):
            split_symmetric_lower(lower, np.arange(9))
        with pytest.raises(ShapeError):
            split_symmetric_lower(lower, np.array([0, 0]))
        with pytest.raises(ShapeError):
            split_symmetric_lower(lower, np.array([99]))


class TestCondest:
    def test_onenorm_exact(self):
        lower = grid2d_laplacian(4)
        full = full_symmetric_from_lower(lower).to_dense()
        assert onenorm_symmetric_lower(lower) == pytest.approx(
            np.abs(full).sum(axis=0).max()
        )

    def test_identity(self):
        lower = CSCMatrix.from_dense(np.eye(5))
        sym = analyzed(lower)
        factor = multifrontal_factor(sym)
        assert condest(lower, factor) == pytest.approx(1.0, rel=0.01)

    def test_within_factor_of_true_cond(self):
        lower = grid2d_laplacian(8)
        full = full_symmetric_from_lower(lower).to_dense()
        true_cond = np.linalg.cond(full, 1)
        factor = multifrontal_factor(analyzed(lower))
        est = condest(lower, factor)
        # Hager's estimate is a lower bound within a modest factor.
        assert true_cond / 10 <= est <= true_cond * 1.01

    def test_ill_conditioned_detected(self):
        d = np.diag([1.0, 1.0, 1e-8])
        lower = CSCMatrix.from_dense(np.tril(d))
        factor = multifrontal_factor(analyzed(lower))
        assert condest(lower, factor) > 1e6

    def test_inverse_estimate_positive(self):
        lower = random_spd_sparse(30, seed=2)
        factor = multifrontal_factor(analyzed(lower))
        assert inverse_onenorm_estimate(factor) > 0

    def test_solver_api(self):
        solver = SparseSolver(grid2d_laplacian(5))
        assert solver.condition_estimate() > 1.0


class TestRefactor:
    def test_new_values_same_pattern(self):
        lower = grid2d_laplacian(5)
        solver = SparseSolver(lower)
        b = make_rng(1).standard_normal(25)
        x1 = solver.solve(b).x
        # Scale the matrix by 2: solution halves.
        lower2 = CSCMatrix(
            lower.shape, lower.indptr, lower.indices, lower.data * 2.0
        )
        solver.refactor(lower2)
        x2 = solver.solve(b).x
        np.testing.assert_allclose(x2, x1 / 2, rtol=1e-10)

    def test_requires_analyze_first(self):
        solver = SparseSolver(grid2d_laplacian(3))
        with pytest.raises(ReproError):
            solver.refactor(grid2d_laplacian(3))

    def test_rejects_different_pattern(self):
        solver = SparseSolver(grid2d_laplacian(4))
        solver.analyze()
        with pytest.raises(ShapeError):
            solver.refactor(grid3d_laplacian(2))  # different shape
        with pytest.raises(ShapeError):
            solver.refactor(random_spd_sparse(16, seed=1))  # same n, diff pattern

    def test_refactor_reuses_symbolic(self):
        solver = SparseSolver(grid2d_laplacian(4))
        solver.factor()
        sym_before = solver.sym
        solver.refactor(solver.lower.copy())
        assert solver.sym is sym_before


class TestAnalyticModel:
    @pytest.fixture(scope="class")
    def sym(self):
        return analyzed(grid3d_laplacian(6))

    @pytest.mark.parametrize("p", [1, 4, 16])
    def test_within_factor_of_des(self, sym, p):
        des = simulate_factorization(
            sym, p, BLUEGENE_P, PlanOptions(nb=32)
        ).makespan
        mod = predict_factor_time(sym, p, BLUEGENE_P, PlanOptions(nb=32))
        assert mod / 3 <= des <= mod * 3

    def test_p1_matches_des_closely(self, sym):
        des = simulate_factorization(
            sym, 1, BLUEGENE_P, PlanOptions(nb=32)
        ).makespan
        mod = predict_factor_time(sym, 1, BLUEGENE_P, PlanOptions(nb=32))
        assert mod == pytest.approx(des, rel=0.35)

    def test_predict_scaling_series(self, sym):
        pts = predict_scaling(sym, [1, 4, 16, 256], BLUEGENE_P, PlanOptions(nb=32))
        assert [p for p, _ in pts] == [1, 4, 16, 256]
        assert all(t > 0 for _, t in pts)

    def test_large_p_cheap(self, sym):
        import time

        t0 = time.perf_counter()
        predict_factor_time(sym, 4096, BLUEGENE_P, PlanOptions(nb=32))
        assert time.perf_counter() - t0 < 5.0


class TestTracing:
    @pytest.fixture(scope="class")
    def traced(self):
        sym = analyzed(grid3d_laplacian(4))
        plan = FactorPlan(sym, 4, PlanOptions(nb=16))
        program = make_factor_program(plan)
        return Simulator(GENERIC_CLUSTER, 4, trace=True).run(program)

    def test_trace_present_and_consistent(self, traced):
        trace = traced.trace
        assert trace is not None
        assert trace.events
        # Trace totals agree with the stats the scheduler kept.
        assert trace.total("compute") == pytest.approx(
            sum(s.compute_time for s in traced.rank_stats), rel=1e-9
        )
        assert trace.total("send") == pytest.approx(
            sum(s.send_time for s in traced.rank_stats), rel=1e-9
        )

    def test_trace_span_matches_makespan(self, traced):
        assert traced.trace.span() <= traced.makespan + 1e-12

    def test_no_trace_by_default(self):
        sym = analyzed(grid2d_laplacian(4))
        plan = FactorPlan(sym, 2, PlanOptions(nb=16))
        res = Simulator(GENERIC_CLUSTER, 2).run(make_factor_program(plan))
        assert res.trace is None

    def test_activity_table(self, traced):
        text = rank_activity_table(traced.trace, 4)
        assert "busy %" in text
        assert len(text.splitlines()) == 6

    def test_ascii_gantt(self, traced):
        art = ascii_gantt(traced.trace, 4, width=40)
        lines = art.splitlines()
        assert len(lines) == 6  # header + 4 ranks + legend
        assert "#" in art

    def test_critical_rank_in_range(self, traced):
        assert 0 <= critical_rank(traced.trace, 4) < 4

    def test_empty_gantt(self):
        from repro.simmpi.trace import Trace

        assert ascii_gantt(Trace(), 2) == "(empty trace)"


class TestNewCollectives:
    def test_sendrecv_ring(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            got = yield from comm.sendrecv(comm.rank, right, left, tag="ring")
            return got

        res = Simulator(GENERIC_CLUSTER, 4).run(prog)
        assert res.returns == [3, 0, 1, 2]

    @pytest.mark.parametrize("p", [2, 4, 8, 3, 5])
    def test_alltoall(self, p):
        def prog(comm):
            values = [f"{comm.rank}->{j}" for j in range(comm.size)]
            got = yield from comm.alltoall(values)
            return got

        res = Simulator(GENERIC_CLUSTER, p).run(prog)
        for me, got in enumerate(res.returns):
            assert got == [f"{src}->{me}" for src in range(p)]

    def test_alltoall_wrong_length(self):
        def prog(comm):
            _ = yield from comm.alltoall([1])

        with pytest.raises(Exception):
            Simulator(GENERIC_CLUSTER, 3).run(prog)
