"""Tests for the multilevel bisection and its ND integration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gen import grid2d_laplacian, grid3d_laplacian, random_spd_sparse
from repro.graph import AdjacencyGraph
from repro.graph.bisection import bisect, cut_size
from repro.graph.multilevel import (
    WeightedGraph,
    bisect_multilevel,
    contract,
    heavy_edge_matching,
)
from repro.graph.separators import is_separator, vertex_separator_from_bisection
from repro.ordering import NDOptions, nested_dissection_order, ordering_quality
from repro.util.errors import OrderingError
from repro.util.rng import make_rng


def grid_graph(nx):
    return AdjacencyGraph.from_symmetric_lower(grid2d_laplacian(nx))


class TestMatching:
    def test_matching_is_symmetric(self):
        g = WeightedGraph.from_adjacency(grid_graph(6))
        match = heavy_edge_matching(g, make_rng(0))
        for u in range(g.n):
            assert match[int(match[u])] == u

    def test_matching_prefers_heavy_edges(self):
        # Triangle with one heavy edge: the heavy edge must be matched.
        xadj = np.array([0, 2, 4, 6])
        adjncy = np.array([1, 2, 0, 2, 0, 1])
        adjwgt = np.array([10, 1, 10, 1, 1, 1])
        vwgt = np.ones(3, dtype=np.int64)
        g = WeightedGraph(xadj, adjncy, adjwgt, vwgt)
        match = heavy_edge_matching(g, make_rng(1))
        assert {int(match[0]), int(match[1])} <= {0, 1}

    def test_isolated_vertices_self_matched(self):
        g = WeightedGraph.from_adjacency(AdjacencyGraph.from_edges(3, [], []))
        match = heavy_edge_matching(g, make_rng(0))
        np.testing.assert_array_equal(match, [0, 1, 2])


class TestContract:
    def test_weights_conserved(self):
        g = WeightedGraph.from_adjacency(grid_graph(5))
        match = heavy_edge_matching(g, make_rng(2))
        coarse, cmap = contract(g, match)
        assert coarse.vwgt.sum() == g.vwgt.sum()
        assert coarse.n < g.n
        assert cmap.max() == coarse.n - 1

    def test_cut_preserved_under_projection(self):
        """A coarse cut projected to the fine graph has the same weight."""
        g = WeightedGraph.from_adjacency(grid_graph(6))
        match = heavy_edge_matching(g, make_rng(3))
        coarse, cmap = contract(g, match)
        rng = make_rng(4)
        cside = rng.random(coarse.n) < 0.5
        fside = cside[cmap]
        # coarse cut weight
        deg = np.diff(coarse.xadj)
        src = np.repeat(np.arange(coarse.n, dtype=np.int64), deg)
        cw = int(
            coarse.adjwgt[cside[src] != cside[coarse.adjncy]].sum()
        ) // 2
        fine_plain = grid_graph(6)
        assert cut_size(fine_plain, fside) == cw

    def test_no_self_loops_in_coarse(self):
        g = WeightedGraph.from_adjacency(grid_graph(4))
        coarse, _ = contract(g, heavy_edge_matching(g, make_rng(5)))
        deg = np.diff(coarse.xadj)
        src = np.repeat(np.arange(coarse.n, dtype=np.int64), deg)
        assert not np.any(src == coarse.adjncy)


class TestMultilevelBisect:
    @pytest.mark.parametrize("nx", [8, 12, 16])
    def test_valid_balanced_bisection(self, nx):
        g = grid_graph(nx)
        side = bisect_multilevel(g)
        n1 = int(side.sum())
        assert 0 < n1 < g.n
        assert max(n1, g.n - n1) <= int(0.56 * g.n) + 1

    def test_cut_competitive_with_flat(self):
        g = grid_graph(16)
        ml = cut_size(g, bisect_multilevel(g))
        flat = cut_size(g, bisect(g))
        # Multilevel should be at least as good as flat within 50%.
        assert ml <= flat * 1.5
        # And close to the geometric optimum (16) within 2x.
        assert ml <= 32

    def test_3d_separator_valid(self):
        g = AdjacencyGraph.from_symmetric_lower(grid3d_laplacian(6))
        side = bisect_multilevel(g)
        p0, p1, sep = vertex_separator_from_bisection(g, side)
        assert is_separator(g, p0, p1)

    def test_trivial_sizes(self):
        assert bisect_multilevel(AdjacencyGraph.from_edges(0, [], [])).size == 0
        assert bisect_multilevel(AdjacencyGraph.from_edges(1, [], [])).tolist() == [False]

    def test_bad_balance(self):
        with pytest.raises(OrderingError):
            bisect_multilevel(grid_graph(4), balance=0.4)

    def test_deterministic(self):
        g = grid_graph(10)
        a = bisect_multilevel(g, seed=7)
        b = bisect_multilevel(g, seed=7)
        np.testing.assert_array_equal(a, b)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 60), st.integers(0, 5000))
    def test_property_random_graphs(self, n, seed):
        lower = random_spd_sparse(n, avg_degree=3, seed=seed)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        side = bisect_multilevel(g)
        assert side.size == n
        p0, p1, sep = vertex_separator_from_bisection(g, side)
        assert is_separator(g, p0, p1)


class TestNDIntegration:
    def test_multilevel_nd_valid_perm(self):
        g = AdjacencyGraph.from_symmetric_lower(grid3d_laplacian(6))
        perm = nested_dissection_order(g, NDOptions(strategy="multilevel"))
        np.testing.assert_array_equal(np.sort(perm), np.arange(g.n))

    def test_multilevel_nd_quality_competitive(self):
        lower = grid3d_laplacian(8)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        q_flat = ordering_quality(lower, nested_dissection_order(g))
        q_ml = ordering_quality(
            lower, nested_dissection_order(g, NDOptions(strategy="multilevel"))
        )
        assert q_ml.factor_flops <= q_flat.factor_flops * 1.4

    def test_small_graphs_skip_multilevel(self):
        # Below the threshold the flat path runs; result is still valid.
        g = AdjacencyGraph.from_symmetric_lower(grid2d_laplacian(5))
        perm = nested_dissection_order(
            g, NDOptions(strategy="multilevel", multilevel_threshold=1000)
        )
        np.testing.assert_array_equal(np.sort(perm), np.arange(25))
