"""Tests for repro.sparse.ops, permute, io_mm."""

import io

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparse import (
    COOMatrix,
    CSCMatrix,
    CSRMatrix,
    matvec_csr,
    matvec_csc,
    transpose_csr,
    tril,
    triu,
    symmetrize,
    full_symmetric_from_lower,
    is_structurally_symmetric,
    sym_matvec_lower,
    permute_symmetric_lower,
    apply_permutation_csc,
    read_matrix_market,
    write_matrix_market,
)
from repro.sparse.permute import (
    invert_permutation,
    permute_vector,
    unpermute_vector,
)
from repro.sparse.io_mm import matrix_market_roundtrip
from repro.util.errors import ShapeError


def random_sparse_dense(rng, shape, density=0.4):
    d = rng.standard_normal(shape)
    d[rng.random(shape) >= density] = 0.0
    return d


class TestMatvec:
    def test_csr_matches_dense(self, rng):
        d = random_sparse_dense(rng, (6, 8))
        x = rng.standard_normal(8)
        m = CSRMatrix.from_dense(d)
        np.testing.assert_allclose(matvec_csr(m, x), d @ x)

    def test_csc_matches_dense(self, rng):
        d = random_sparse_dense(rng, (6, 8))
        x = rng.standard_normal(8)
        m = CSCMatrix.from_dense(d)
        np.testing.assert_allclose(matvec_csc(m, x), d @ x)

    def test_empty_rows(self):
        d = np.array([[0.0, 0.0], [1.0, 2.0], [0.0, 0.0]])
        m = CSRMatrix.from_dense(d)
        np.testing.assert_allclose(matvec_csr(m, np.array([1.0, 1.0])), [0.0, 3.0, 0.0])

    def test_zero_matrix(self):
        m = CSRMatrix.from_dense(np.zeros((3, 3)))
        np.testing.assert_array_equal(matvec_csr(m, np.ones(3)), np.zeros(3))
        mc = CSCMatrix.from_dense(np.zeros((3, 3)))
        np.testing.assert_array_equal(matvec_csc(mc, np.ones(3)), np.zeros(3))

    def test_wrong_x_shape(self):
        m = CSRMatrix.from_dense(np.eye(3))
        with pytest.raises(ShapeError):
            matvec_csr(m, np.ones(4))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 10), st.integers(1, 10), st.integers(0, 1000))
    def test_property_csr_csc_agree(self, nr, nc, seed):
        rng = np.random.default_rng(seed)
        d = random_sparse_dense(rng, (nr, nc))
        x = rng.standard_normal(nc)
        yr = matvec_csr(CSRMatrix.from_dense(d), x)
        yc = matvec_csc(CSCMatrix.from_dense(d), x)
        np.testing.assert_allclose(yr, yc, atol=1e-12)


class TestTransposeTriangles:
    def test_transpose_csr(self, rng):
        d = random_sparse_dense(rng, (5, 7))
        t = transpose_csr(CSRMatrix.from_dense(d))
        np.testing.assert_allclose(t.to_dense(), d.T)

    def test_tril_triu(self, rng):
        d = random_sparse_dense(rng, (6, 6))
        m = CSCMatrix.from_dense(d)
        np.testing.assert_allclose(tril(m).to_dense(), np.tril(d))
        np.testing.assert_allclose(triu(m).to_dense(), np.triu(d))
        np.testing.assert_allclose(tril(m, k=-1).to_dense(), np.tril(d, -1))
        np.testing.assert_allclose(triu(m, k=1).to_dense(), np.triu(d, 1))

    def test_tril_triu_partition(self, rng):
        d = random_sparse_dense(rng, (6, 6))
        m = CSCMatrix.from_dense(d)
        total = tril(m, -1).to_dense() + triu(m).to_dense()
        np.testing.assert_allclose(total, d)


class TestSymmetry:
    def test_is_structurally_symmetric_true(self):
        d = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert is_structurally_symmetric(CSCMatrix.from_dense(d))

    def test_is_structurally_symmetric_false(self):
        d = np.array([[1.0, 2.0], [0.0, 4.0]])
        assert not is_structurally_symmetric(CSCMatrix.from_dense(d))

    def test_not_square(self):
        d = np.ones((2, 3))
        assert not is_structurally_symmetric(CSCMatrix.from_dense(d))

    def test_symmetrize_average(self, rng):
        d = random_sparse_dense(rng, (5, 5))
        s = symmetrize(CSCMatrix.from_dense(d))
        np.testing.assert_allclose(s.to_dense(), (d + d.T) / 2)

    def test_symmetrize_pattern_keeps_values(self):
        d = np.array([[1.0, 5.0], [0.0, 2.0]])
        s = symmetrize(CSCMatrix.from_dense(d), mode="pattern")
        out = s.to_dense()
        assert out[0, 1] == 5.0
        assert out[1, 0] == 5.0

    def test_symmetrize_bad_mode(self):
        with pytest.raises(ValueError):
            symmetrize(CSCMatrix.from_dense(np.eye(2)), mode="nope")

    def test_symmetrize_requires_square(self):
        with pytest.raises(ShapeError):
            symmetrize(CSCMatrix.from_dense(np.ones((2, 3))))

    def test_full_from_lower(self, rng):
        d = random_sparse_dense(rng, (6, 6))
        sym = (d + d.T) / 2
        np.fill_diagonal(sym, 1.0)
        lower = CSCMatrix.from_dense(np.tril(sym))
        np.testing.assert_allclose(full_symmetric_from_lower(lower).to_dense(), sym)

    def test_sym_matvec_lower(self, rng):
        d = random_sparse_dense(rng, (8, 8))
        sym = d + d.T
        np.fill_diagonal(sym, 3.0)
        lower = CSCMatrix.from_dense(np.tril(sym))
        x = rng.standard_normal(8)
        np.testing.assert_allclose(sym_matvec_lower(lower, x), sym @ x)

    def test_sym_matvec_lower_empty(self):
        lower = CSCMatrix.from_dense(np.zeros((3, 3)))
        np.testing.assert_array_equal(sym_matvec_lower(lower, np.ones(3)), np.zeros(3))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 12), st.integers(0, 1000))
    def test_property_sym_matvec(self, n, seed):
        rng = np.random.default_rng(seed)
        d = random_sparse_dense(rng, (n, n))
        sym = d + d.T
        lower = CSCMatrix.from_dense(np.tril(sym))
        x = rng.standard_normal(n)
        np.testing.assert_allclose(sym_matvec_lower(lower, x), sym @ x, atol=1e-10)


class TestPermute:
    def test_invert_permutation(self):
        p = np.array([2, 0, 1], dtype=np.int64)
        inv = invert_permutation(p)
        np.testing.assert_array_equal(inv[p], np.arange(3))

    def test_permute_unpermute_vector(self, rng):
        x = rng.standard_normal(5)
        p = rng.permutation(5)
        np.testing.assert_allclose(unpermute_vector(permute_vector(x, p), p), x)

    def test_apply_permutation_csc(self, rng):
        d = random_sparse_dense(rng, (5, 5))
        rp = rng.permutation(5)
        cp = rng.permutation(5)
        out = apply_permutation_csc(CSCMatrix.from_dense(d), rp, cp)
        np.testing.assert_allclose(out.to_dense(), d[np.ix_(rp, cp)])

    def test_permute_symmetric_lower(self, rng):
        d = random_sparse_dense(rng, (7, 7))
        sym = d + d.T
        np.fill_diagonal(sym, 5.0)
        lower = CSCMatrix.from_dense(np.tril(sym))
        p = rng.permutation(7)
        out = permute_symmetric_lower(lower, p)
        expected = np.tril(sym[np.ix_(p, p)])
        np.testing.assert_allclose(out.to_dense(), expected)

    def test_permute_symmetric_identity(self, rng):
        d = np.tril(random_sparse_dense(rng, (5, 5)))
        np.fill_diagonal(d, 1.0)
        lower = CSCMatrix.from_dense(d)
        out = permute_symmetric_lower(lower, np.arange(5))
        np.testing.assert_allclose(out.to_dense(), d)

    def test_bad_permutation(self, rng):
        lower = CSCMatrix.from_dense(np.eye(3))
        with pytest.raises(ShapeError):
            permute_symmetric_lower(lower, [0, 0, 1])


class TestMatrixMarket:
    def test_roundtrip_general(self, rng):
        d = random_sparse_dense(rng, (5, 4))
        m = COOMatrix.from_dense(d)
        out = matrix_market_roundtrip(m)
        np.testing.assert_allclose(out.to_dense(), d)

    def test_symmetric_write_read(self, rng, tmp_path):
        d = random_sparse_dense(rng, (5, 5))
        sym = d + d.T
        np.fill_diagonal(sym, 2.0)
        lower = COOMatrix.from_dense(np.tril(sym))
        path = tmp_path / "m.mtx"
        write_matrix_market(path, lower, symmetric=True)
        coo, info = read_matrix_market(path)
        assert info["symmetry"] == "symmetric"
        np.testing.assert_allclose(coo.to_dense(), sym)

    def test_symmetric_write_rejects_upper(self):
        m = COOMatrix((2, 2), [0], [1], [1.0])
        with pytest.raises(ShapeError):
            write_matrix_market(io.StringIO(), m, symmetric=True)

    def test_pattern_read(self):
        text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n"
        coo, info = read_matrix_market(io.StringIO(text))
        assert info["field"] == "pattern"
        np.testing.assert_allclose(coo.to_dense(), np.eye(2))

    def test_comment_lines_skipped(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n% another\n1 1 1\n1 1 3.5\n"
        )
        coo, _ = read_matrix_market(io.StringIO(text))
        assert coo.to_dense()[0, 0] == 3.5

    def test_bad_header(self):
        with pytest.raises(ShapeError):
            read_matrix_market(io.StringIO("garbage\n"))

    def test_unsupported_field(self):
        text = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n"
        with pytest.raises(ShapeError):
            read_matrix_market(io.StringIO(text))

    def test_scipy_interop(self, rng, tmp_path):
        """Files we write parse identically under scipy's reader."""
        import scipy.io as sio

        d = random_sparse_dense(rng, (6, 6))
        m = COOMatrix.from_dense(d)
        path = tmp_path / "interop.mtx"
        write_matrix_market(path, m)
        ref = sio.mmread(str(path)).toarray()
        np.testing.assert_allclose(ref, d)


class TestEquilibration:
    def test_unit_diagonal_after_scaling(self, rng):
        from repro.sparse.scaling import symmetric_equilibrate

        d = np.diag([1.0, 100.0, 1e-4, 9.0])
        d[1, 0] = d[3, 2] = 0.5
        lower = CSCMatrix.from_dense(np.tril(d))
        scaled, diag = symmetric_equilibrate(lower)
        np.testing.assert_allclose(scaled.diagonal(), 1.0)
        np.testing.assert_array_equal(diag, [1.0, 100.0, 1e-4, 9.0])

    def test_solve_roundtrip(self, rng):
        from repro.core import SparseSolver
        from repro.sparse.ops import full_symmetric_from_lower
        from repro.sparse.scaling import (
            scale_rhs,
            symmetric_equilibrate,
            unscale_solution,
        )

        base = rng.standard_normal((8, 8))
        spd = base @ base.T + 8 * np.eye(8)
        scale = np.diag(10.0 ** rng.integers(-4, 5, size=8).astype(float))
        a = scale @ spd @ scale  # badly scaled SPD
        lower = CSCMatrix.from_dense(np.tril(a))
        b = rng.standard_normal(8)

        scaled, d = symmetric_equilibrate(lower)
        x_hat = SparseSolver(scaled).solve(scale_rhs(b, d)).x
        x = unscale_solution(x_hat, d)
        np.testing.assert_allclose(a @ x, b, rtol=1e-7, atol=1e-9)

    def test_improves_conditioning(self, rng):
        from repro.sparse.ops import full_symmetric_from_lower
        from repro.sparse.scaling import symmetric_equilibrate

        base = rng.standard_normal((6, 6))
        spd = base @ base.T + 6 * np.eye(6)
        scale = np.diag([1e-5, 1.0, 1e5, 1.0, 1e-3, 1e3])
        a = scale @ spd @ scale
        lower = CSCMatrix.from_dense(np.tril(a))
        scaled, _ = symmetric_equilibrate(lower)
        c_before = np.linalg.cond(full_symmetric_from_lower(lower).to_dense())
        c_after = np.linalg.cond(full_symmetric_from_lower(scaled).to_dense())
        assert c_after < c_before / 1e6

    def test_rejects_nonpositive_diag(self):
        from repro.sparse.scaling import symmetric_equilibrate

        lower = CSCMatrix.from_dense(np.diag([1.0, -2.0]))
        with pytest.raises(ShapeError):
            symmetric_equilibrate(lower)


class TestMatrixMarketMalformed:
    """Malformed / truncated coordinate files must raise ShapeError naming
    the offending line, never a bare IndexError/ValueError."""

    HEADER = "%%MatrixMarket matrix coordinate real general\n"

    def read(self, text):
        return read_matrix_market(io.StringIO(text))

    def test_blank_lines_are_skipped(self):
        text = (
            self.HEADER
            + "\n% a comment\n\n2 2 2\n\n1 1 1.5\n\n\n2 2 2.5\n"
        )
        coo, _ = self.read(text)
        np.testing.assert_allclose(coo.to_dense(), np.diag([1.5, 2.5]))

    def test_truncated_entries_name_missing_entry(self):
        with pytest.raises(ShapeError, match="entry 2 of 3"):
            self.read(self.HEADER + "2 2 3\n1 1 1.0\n")

    def test_missing_size_line(self):
        with pytest.raises(ShapeError, match="truncated"):
            self.read(self.HEADER + "% only comments follow\n")

    def test_short_entry_names_line(self):
        with pytest.raises(ShapeError, match="line 4"):
            self.read(self.HEADER + "2 2 2\n1 1 1.0\n2 2\n")

    def test_pattern_entry_needs_two_tokens(self):
        text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1\n"
        with pytest.raises(ShapeError, match="line 3"):
            self.read(text)

    def test_size_line_token_count(self):
        with pytest.raises(ShapeError, match="size line"):
            self.read(self.HEADER + "2 2\n")

    def test_size_line_non_integer(self):
        with pytest.raises(ShapeError, match="integers"):
            self.read(self.HEADER + "2 2 one\n")

    def test_non_numeric_entry_names_line(self):
        with pytest.raises(ShapeError, match="line 4"):
            self.read(self.HEADER + "% c\n1 1 1\n1 x 3.5\n")

    def test_blank_lines_do_not_shift_error_line_numbers(self):
        with pytest.raises(ShapeError, match="line 6"):
            self.read(self.HEADER + "\n\n2 2 2\n1 1 1.0\n2 2\n")
