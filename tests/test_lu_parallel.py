"""Tests for the distributed (simulated-parallel) LU path."""

import numpy as np
import pytest

from repro.core import ParallelConfig, UnsymmetricSolver
from repro.gen import convection_diffusion2d
from repro.machine import BLUEGENE_P, GENERIC_CLUSTER
from repro.parallel import PlanOptions
from repro.parallel.lu_par import (
    ea_pairs_full,
    simulate_lu_factorization,
    simulate_lu_solve,
)
from repro.sparse import CSCMatrix
from repro.sparse.ops import matvec_csc
from repro.util.errors import ReproError, ShapeError
from repro.util.rng import make_rng


@pytest.fixture(scope="module")
def problem():
    a = convection_diffusion2d(8, wind=(1.0, -0.4), peclet=1.5)
    seq = UnsymmetricSolver(a)
    seq.factor()
    return a, seq


class TestDistributedLUFactor:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_matches_sequential(self, problem, p):
        a, seq = problem
        res = simulate_lu_factorization(
            seq.sym, seq.permuted_full, p, GENERIC_CLUSTER, PlanOptions(nb=8)
        )
        l_ref, u_ref = seq.factor_data.to_dense_lu()
        l, u = res.to_dense_lu()
        np.testing.assert_allclose(l, l_ref, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(u, u_ref, rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("policy", ["2d", "1d"])
    def test_policies(self, problem, policy):
        a, seq = problem
        res = simulate_lu_factorization(
            seq.sym,
            seq.permuted_full,
            4,
            GENERIC_CLUSTER,
            PlanOptions(nb=8, policy=policy),
        )
        l_ref, u_ref = seq.factor_data.to_dense_lu()
        l, u = res.to_dense_lu()
        np.testing.assert_allclose(l, l_ref, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(u, u_ref, rtol=1e-9, atol=1e-9)

    def test_flops_about_double_symmetric(self, problem):
        """LU on the symmetrized structure counts ~2x the Cholesky flops."""
        a, seq = problem
        res = simulate_lu_factorization(
            seq.sym, seq.permuted_full, 2, GENERIC_CLUSTER, PlanOptions(nb=8)
        )
        sym_flops = sum(
            seq.sym.supernode_flops(s) for s in range(seq.sym.n_supernodes)
        )
        assert res.total_flops == pytest.approx(2 * sym_flops, rel=0.35)

    def test_ea_pairs_full_superset_of_triangular(self, problem):
        from repro.parallel import FactorPlan

        _, seq = problem
        plan = FactorPlan(seq.sym, 4, PlanOptions(nb=8))
        for c in range(seq.sym.n_supernodes):
            if seq.sym.sn_parent[c] < 0:
                continue
            assert plan.ea_pairs(c) <= ea_pairs_full(plan, c)


class TestDistributedLUSolve:
    @pytest.mark.parametrize("p", [1, 2, 4, 6])
    def test_residual(self, problem, p):
        a, seq = problem
        res = simulate_lu_factorization(
            seq.sym, seq.permuted_full, p, GENERIC_CLUSTER, PlanOptions(nb=8)
        )
        b = make_rng(p).standard_normal(a.shape[0])
        _sim, x = simulate_lu_solve(res, b)
        r = np.max(np.abs(b - matvec_csc(a, x)))
        assert r < 1e-10 * max(1.0, np.max(np.abs(b)))

    def test_matches_numpy(self, problem):
        a, seq = problem
        res = simulate_lu_factorization(
            seq.sym, seq.permuted_full, 4, GENERIC_CLUSTER, PlanOptions(nb=8)
        )
        b = make_rng(3).standard_normal(a.shape[0])
        _sim, x = simulate_lu_solve(res, b)
        np.testing.assert_allclose(
            x, np.linalg.solve(a.to_dense(), b), rtol=1e-8
        )

    def test_bad_rhs_shape(self, problem):
        a, seq = problem
        res = simulate_lu_factorization(
            seq.sym, seq.permuted_full, 2, GENERIC_CLUSTER, PlanOptions(nb=8)
        )
        with pytest.raises(ShapeError):
            simulate_lu_solve(res, np.ones(3))


class TestLUSolverSimulateAPI:
    def test_simulate_with_verify_and_solve(self, problem):
        a, _ = problem
        solver = UnsymmetricSolver(a)
        b = np.ones(a.shape[0])
        cfg = ParallelConfig(n_ranks=4, machine=BLUEGENE_P, nb=8)
        res, x = solver.simulate(cfg, b=b, verify=True)
        r = np.max(np.abs(b - matvec_csc(a, x)))
        assert r < 1e-9
        assert res.makespan > 0

    def test_simulate_detects_corruption(self, problem, monkeypatch):
        a, _ = problem
        solver = UnsymmetricSolver(a)
        solver.factor()
        from repro.parallel.lu_par import ParallelLUResult

        real = ParallelLUResult.to_dense_lu

        def corrupted(self):
            l, u = real(self)
            u[0, 0] += 1.0
            return l, u

        monkeypatch.setattr(ParallelLUResult, "to_dense_lu", corrupted)
        with pytest.raises(ReproError, match="mismatch"):
            solver.simulate(
                ParallelConfig(n_ranks=2, machine=GENERIC_CLUSTER, nb=8),
                verify=True,
            )

    def test_scaling_smoke(self):
        """LU strong scaling on the BG/P model shows speedup on a bigger
        mesh, like the symmetric path."""
        a = convection_diffusion2d(16, peclet=1.0)
        solver = UnsymmetricSolver(a)
        solver.analyze()
        t1 = simulate_lu_factorization(
            solver.sym, solver.permuted_full, 1, BLUEGENE_P, PlanOptions(nb=16)
        ).makespan
        t8 = simulate_lu_factorization(
            solver.sym, solver.permuted_full, 8, BLUEGENE_P, PlanOptions(nb=16)
        ).makespan
        assert t8 < t1


class TestLUStaticPolicy:
    def test_static_policy_matches(self, problem):
        """Static-grid mapping exercises cross-rank extend-add between
        sequential supernodes (children scattered over ranks)."""
        a, seq = problem
        res = simulate_lu_factorization(
            seq.sym,
            seq.permuted_full,
            4,
            GENERIC_CLUSTER,
            PlanOptions(nb=8, policy="static"),
        )
        l_ref, u_ref = seq.factor_data.to_dense_lu()
        l, u = res.to_dense_lu()
        np.testing.assert_allclose(l, l_ref, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(u, u_ref, rtol=1e-9, atol=1e-9)
        b = make_rng(5).standard_normal(a.shape[0])
        _sim, x = simulate_lu_solve(res, b)
        r = np.max(np.abs(b - matvec_csc(a, x)))
        assert r < 1e-10


class TestLUPropertyPipeline:
    @pytest.mark.parametrize("seed,p", [(0, 2), (1, 3), (2, 5), (3, 8)])
    def test_random_dd_end_to_end(self, seed, p):
        rng = make_rng(seed)
        n = 30
        dense = rng.standard_normal((n, n))
        mask = rng.random((n, n)) < 0.15
        np.fill_diagonal(mask, False)
        dense = dense * mask
        np.fill_diagonal(dense, np.abs(dense).sum(axis=1) + 1.0)
        a = CSCMatrix.from_dense(dense)
        solver = UnsymmetricSolver(a)
        solver.analyze()
        res = simulate_lu_factorization(
            solver.sym, solver.permuted_full, p, GENERIC_CLUSTER, PlanOptions(nb=4)
        )
        b = rng.standard_normal(n)
        _sim, x = simulate_lu_solve(res, b)
        np.testing.assert_allclose(x, np.linalg.solve(dense, b), rtol=1e-7, atol=1e-9)


class TestLUMultiRHS:
    @pytest.mark.parametrize("k", [2, 4])
    def test_block_residuals(self, problem, k):
        a, seq = problem
        res = simulate_lu_factorization(
            seq.sym, seq.permuted_full, 4, GENERIC_CLUSTER, PlanOptions(nb=8)
        )
        n = a.shape[0]
        b = make_rng(20 + k).standard_normal((n, k))
        _sim, x = simulate_lu_solve(res, b)
        assert x.shape == (n, k)
        for j in range(k):
            r = np.max(np.abs(b[:, j] - matvec_csc(a, x[:, j])))
            assert r < 1e-10

    def test_block_matches_single(self, problem):
        a, seq = problem
        res = simulate_lu_factorization(
            seq.sym, seq.permuted_full, 3, GENERIC_CLUSTER, PlanOptions(nb=8)
        )
        b = make_rng(30).standard_normal((a.shape[0], 3))
        _s, xb = simulate_lu_solve(res, b)
        for j in range(3):
            _s, xj = simulate_lu_solve(res, b[:, j])
            np.testing.assert_allclose(xb[:, j], xj, rtol=1e-12)

    def test_block_amortizes(self, problem):
        a, seq = problem
        res = simulate_lu_factorization(
            seq.sym, seq.permuted_full, 4, GENERIC_CLUSTER, PlanOptions(nb=8)
        )
        b = make_rng(31).standard_normal((a.shape[0], 8))
        s_block, _ = simulate_lu_solve(res, b)
        s_single, _ = simulate_lu_solve(res, b[:, 0])
        assert s_block.makespan < 4 * s_single.makespan
