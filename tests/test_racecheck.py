"""Tests for repro.check.racecheck and repro.check.schedfuzz.

Two kinds of evidence: hand-built traces with *seeded violations* prove
the happens-before checker actually detects each defect class (a checker
that never fires is worthless), and live traced runs of the threaded
backend prove the real schedules are clean, deterministic across worker
counts, and survive adversarial schedule fuzzing bitwise-intact.
"""

import subprocess
import sys

import pytest

from repro.check import racecheck, schedfuzz
from repro.check.racecheck import check_determinism, check_exec_trace
from repro.core.solver import SparseSolver
from repro.exec import (
    ExecTrace,
    TaskPool,
    multifrontal_factor_threads,
    solve_many_threads,
    solve_threads,
)
from repro.exec.trace import ExecEvent
from repro.gen import grid2d_laplacian, grid3d_laplacian
from repro.mf.numeric import multifrontal_factor
from repro.util.errors import RaceError
from repro.util.rng import make_rng

pytestmark = pytest.mark.check


def _trace(*specs):
    """Hand-build an ExecTrace from (kind, field=value, ...) tuples."""
    events = []
    for i, (kind, kw) in enumerate(specs):
        events.append(ExecEvent(seq=i, kind=kind, time=float(i), **kw))
    return ExecTrace.from_events(events)


def _seg(*body, n_tasks, label="g", aborted=False):
    """Wrap *body* specs in graph_begin/graph_end markers."""
    end = "graph_abort" if aborted else "graph_end"
    return _trace(
        ("graph_begin", {"target": n_tasks, "label": label}),
        *body,
        (end, {"target": n_tasks, "label": label}),
    )


def _analyzed(lower, method="cholesky"):
    solver = SparseSolver(lower, method=method)
    solver.analyze()
    return solver.sym


# -- seeded violations: each defect class must be detected --------------------


def test_clean_chain_trace_passes():
    tr = _seg(
        ("task_start", {"task": 0, "worker": 0}),
        ("slot_write", {"task": 0, "slot": "upd:0"}),
        ("task_end", {"task": 0, "worker": 0}),
        ("dep_dec", {"task": 0, "target": 1, "remaining": 0}),
        ("task_start", {"task": 1, "worker": 1}),
        ("slot_consume", {"task": 1, "slot": "upd:0"}),
        ("task_end", {"task": 1, "worker": 1}),
        n_tasks=2,
    )
    report = check_exec_trace(tr)
    assert report.ok
    assert report.n_segments == 1
    assert report.n_hb_pairs_checked == 1


def test_dropped_dep_edge_is_a_race():
    # Same accesses as the clean chain, but the dep_dec edge never fired:
    # nothing orders the write against the consume.
    tr = _seg(
        ("slot_write", {"task": 0, "slot": "upd:0"}),
        ("slot_consume", {"task": 1, "slot": "upd:0"}),
        n_tasks=2,
    )
    report = check_exec_trace(tr)
    codes = {f.code for f in report.errors}
    assert "race" in codes
    assert "consume-before-write" in codes
    with pytest.raises(RaceError, match="race"):
        racecheck.verify_exec_trace(tr)


def test_double_consume_detected():
    tr = _seg(
        ("slot_write", {"task": 0, "slot": "upd:0"}),
        ("dep_dec", {"task": 0, "target": 1, "remaining": 0}),
        ("dep_dec", {"task": 1, "target": 2, "remaining": 0}),
        ("slot_consume", {"task": 1, "slot": "upd:0"}),
        ("slot_consume", {"task": 2, "slot": "upd:0"}),
        n_tasks=3,
    )
    report = check_exec_trace(tr)
    assert [f.code for f in report.errors] == ["double-consume"]
    assert report.errors[0].tasks == (1, 2)


def test_unconsumed_contribution_detected():
    tr = _seg(
        ("slot_write", {"task": 0, "slot": "upd:0"}),
        ("dep_dec", {"task": 0, "target": 1, "remaining": 0}),
        n_tasks=2,
    )
    report = check_exec_trace(tr)
    assert [f.code for f in report.errors] == ["unconsumed"]


def test_aborted_segment_skips_conservation():
    tr = _seg(
        ("slot_write", {"task": 0, "slot": "upd:0"}),
        ("dep_dec", {"task": 0, "target": 1, "remaining": 0}),
        n_tasks=2,
        aborted=True,
    )
    assert check_exec_trace(tr).ok


def test_double_write_detected():
    tr = _seg(
        ("slot_write", {"task": 0, "slot": "upd:0"}),
        ("dep_dec", {"task": 0, "target": 1, "remaining": 0}),
        ("slot_write", {"task": 1, "slot": "upd:0"}),
        ("dep_dec", {"task": 1, "target": 2, "remaining": 0}),
        ("slot_consume", {"task": 2, "slot": "upd:0"}),
        n_tasks=3,
    )
    assert "double-write" in {f.code for f in check_exec_trace(tr).errors}


def test_missing_write_detected():
    tr = _seg(
        ("slot_consume", {"task": 0, "slot": "upd:9"}),
        n_tasks=1,
    )
    assert [f.code for f in check_exec_trace(tr).errors] == ["missing-write"]


def test_row_run_consumes_do_not_conflict():
    # Two pure row-run reads of disjoint ranges (the forward solve's
    # pattern) conflict with the write but not with each other.
    tr = _seg(
        ("slot_write", {"task": 0, "slot": "fwd:0"}),
        ("dep_dec", {"task": 0, "target": 1, "remaining": 0}),
        ("dep_dec", {"task": 0, "target": 2, "remaining": 0}),
        ("slot_consume", {"task": 1, "slot": "fwd:0", "lo": 0, "hi": 3}),
        ("slot_consume", {"task": 2, "slot": "fwd:0", "lo": 3, "hi": 5}),
        n_tasks=3,
    )
    report = check_exec_trace(tr)
    assert report.ok
    # write-vs-consume pairs checked; consume-vs-consume never conflicts
    assert report.n_hb_pairs_checked == 2


def test_events_outside_segment_are_malformed():
    tr = _trace(("slot_write", {"task": 0, "slot": "upd:0"}))
    report = check_exec_trace(tr)
    assert [f.code for f in report.errors] == ["malformed"]


def test_cyclic_dep_log_is_malformed():
    tr = _seg(
        ("dep_dec", {"task": 0, "target": 1, "remaining": 0}),
        ("dep_dec", {"task": 1, "target": 0, "remaining": 0}),
        n_tasks=2,
    )
    report = check_exec_trace(tr)
    assert any(f.code == "malformed" and "cycle" in f.message
               for f in report.errors)


# -- determinism audit --------------------------------------------------------


def test_determinism_audit_flags_divergence():
    a = _seg(
        ("slot_write", {"task": 0, "slot": "upd:0"}),
        ("dep_dec", {"task": 0, "target": 1, "remaining": 0}),
        ("slot_consume", {"task": 1, "slot": "upd:0"}),
        n_tasks=2,
    )
    b = _seg(
        ("slot_write", {"task": 0, "slot": "upd:0"}),
        ("dep_dec", {"task": 0, "target": 1, "remaining": 0}),
        # extra read task 1 never did in run a
        ("slot_read", {"task": 1, "slot": "upd:0"}),
        ("slot_consume", {"task": 1, "slot": "upd:0"}),
        n_tasks=2,
    )
    assert check_determinism([a, a]).ok
    report = check_determinism([a, b], labels=["w1", "w4"])
    assert not report.ok
    assert "w4 diverges from w1" in report.errors[0].message


def test_normalization_drops_schedule_noise():
    # Same logical run logged with different seq/worker/time stamps.
    a = _seg(
        ("task_start", {"task": 0, "worker": 0}),
        ("slot_write", {"task": 0, "slot": "upd:0"}),
        ("dep_dec", {"task": 0, "target": 1, "remaining": 0}),
        ("slot_consume", {"task": 1, "slot": "upd:0"}),
        n_tasks=2,
    )
    b = _seg(
        ("task_start", {"task": 0, "worker": 3}),
        ("slot_write", {"task": 0, "slot": "upd:0"}),
        ("dep_dec", {"task": 0, "target": 1, "remaining": 0}),
        ("slot_consume", {"task": 1, "slot": "upd:0"}),
        n_tasks=2,
    )
    assert racecheck.normalize_trace(a) == racecheck.normalize_trace(b)


# -- live traces of the real backend ------------------------------------------


@pytest.mark.parametrize("workers", [1, 4])
def test_live_factor_and_solve_traces_are_clean(workers):
    sym = _analyzed(grid2d_laplacian(8))
    pool = TaskPool(workers, name="factor", trace=True)
    factor = multifrontal_factor_threads(sym, pool=pool)
    b = make_rng(1).standard_normal(sym.n)
    spool = TaskPool(workers, name="solve", trace=pool.trace)
    solve_threads(factor, b, pool=spool)
    report = check_exec_trace(pool.trace)
    assert report.ok, report.summary()
    # factor + forward + backward
    assert report.n_segments == 3
    assert report.n_hb_pairs_checked > 0


def test_live_traces_deterministic_across_worker_counts():
    sym = _analyzed(grid3d_laplacian(4))
    bp = make_rng(2).standard_normal((sym.n, 3))
    traces = []
    for w in (1, 2, 4):
        pool = TaskPool(w, name="factor", trace=True)
        factor = multifrontal_factor_threads(sym, pool=pool)
        spool = TaskPool(w, name="solve", trace=pool.trace)
        solve_many_threads(factor, bp, pool=spool)
        traces.append(pool.trace)
    report = check_determinism(traces, labels=["w1", "w2", "w4"])
    assert report.ok, report.summary()


def test_aborted_live_run_still_checkable():
    # An indefinite matrix aborts the factor run mid-graph; the partial
    # trace must parse as an aborted segment with no race findings.
    from repro.sparse.csc import CSCMatrix
    from repro.util.errors import NotPositiveDefiniteError

    lower = grid2d_laplacian(6)
    data = lower.data.copy()
    for j in range(lower.shape[0]):
        k = lower.indptr[j]
        if lower.indices[k] == j:
            data[k] = -abs(data[k])
    bad = CSCMatrix(lower.shape, lower.indptr, lower.indices, data)
    sym = _analyzed(bad)
    pool = TaskPool(4, name="factor", trace=True)
    with pytest.raises(NotPositiveDefiniteError):
        multifrontal_factor_threads(sym, pool=pool)
    report = check_exec_trace(pool.trace)
    assert report.ok, report.summary()
    kinds = {e.kind for e in pool.trace.events}
    assert "graph_abort" in kinds


def test_trace_jsonl_round_trip(tmp_path):
    sym = _analyzed(grid2d_laplacian(6))
    pool = TaskPool(2, name="factor", trace=True)
    multifrontal_factor_threads(sym, pool=pool)
    path = str(tmp_path / "trace.jsonl")
    pool.trace.dump(path)
    loaded = ExecTrace.load(path)
    assert loaded.sorted_events() == pool.trace.sorted_events()
    assert check_exec_trace(loaded).ok


# -- schedule fuzzing ---------------------------------------------------------


def test_fuzz_plan_is_deterministic_in_seed():
    cfg = schedfuzz.FuzzConfig(seed=7)
    a, b = schedfuzz.FuzzPlan(cfg), schedfuzz.FuzzPlan(cfg)
    for t in range(50):
        assert a.ready_key(t, -1.0) == b.ready_key(t, -1.0)
        assert a.delay(t) == b.delay(t)
        assert a.defer(t) == b.defer(t)
    other = schedfuzz.FuzzPlan(schedfuzz.FuzzConfig(seed=8))
    keys_a = [a.ready_key(t, -1.0) for t in range(50)]
    keys_o = [other.ready_key(t, -1.0) for t in range(50)]
    assert keys_a != keys_o


def test_fuzz_defer_budget_is_bounded():
    cfg = schedfuzz.FuzzConfig(seed=3, defer_prob=1.0, max_defers=2)
    plan = schedfuzz.FuzzPlan(cfg)
    assert sum(plan.defer(11) for _ in range(10)) == 2


def test_fuzzed_factor_and_solve_stay_bitwise_identical():
    sym = _analyzed(grid2d_laplacian(7))
    results = schedfuzz.fuzz_factor(sym, seeds=[0, 1, 2], workers=3)
    factor = multifrontal_factor(sym)
    b = make_rng(4).standard_normal((sym.n, 2))
    results += schedfuzz.fuzz_solve(factor, b, seeds=[0, 1], workers=3)
    assert results, "no fuzz cases ran"
    for r in results:
        assert r.ok, r.summary()
        assert r.race_report.n_hb_pairs_checked > 0


def test_fuzz_smoke_raises_on_failure(monkeypatch):
    sym = _analyzed(grid2d_laplacian(6))
    # Sabotage the bitwise comparison so every case "fails": fuzz_smoke
    # must surface the replayable seeds in a RaceError.
    monkeypatch.setattr(
        schedfuzz, "_factors_identical", lambda ref, got: False
    )
    with pytest.raises(RaceError, match="seed="):
        schedfuzz.fuzz_smoke(sym, n_seeds=2, workers=(2,))


def test_fuzz_smoke_small_clean():
    sym = _analyzed(grid2d_laplacian(6))
    results = schedfuzz.fuzz_smoke(sym, n_seeds=3, workers=(2, 4))
    assert len(results) == 6  # factor + solve per seed
    assert all(r.ok for r in results)


# -- CLI end to end -----------------------------------------------------------


def test_cli_race_and_sched_fuzz(tmp_path):
    out = str(tmp_path / "exec_trace.jsonl")
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "check",
            "--race", "plate:6:2", "--sched-fuzz", "2",
            "--fuzz-workers", "2", "--dump-trace", out,
        ],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "racecheck:" in proc.stdout
    assert "0 error(s)" in proc.stdout
    assert "normalize identically" in proc.stdout
    assert "zero races" in proc.stdout
    assert check_exec_trace(ExecTrace.load(out)).ok


def test_cli_race_rejects_bad_spec():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "check", "--race", "cube:8"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode != 0
