"""Shared fixtures and helpers for the test suite.

scipy is used here (and only here) as an independent oracle for sparse
formats, orderings, and factorizations.
"""

import numpy as np
import pytest

from repro.sparse import COOMatrix, coo_to_csc
from repro.sparse.ops import tril
from repro.util.rng import make_rng


def random_spd_dense(n: int, density: float, rng) -> np.ndarray:
    """Dense random SPD matrix via diagonally-dominated random symmetric
    sparsity. Small helper for oracle tests (dense path)."""
    a = np.zeros((n, n))
    mask = rng.random((n, n)) < density
    vals = rng.standard_normal((n, n))
    a[mask] = vals[mask]
    a = (a + a.T) / 2
    np.fill_diagonal(a, np.abs(a).sum(axis=1) + 1.0)
    return a


@pytest.fixture
def rng():
    return make_rng(12345)


@pytest.fixture
def small_spd_lower(rng):
    """Lower triangle (CSC) of a small random SPD matrix plus its dense form."""
    dense = random_spd_dense(12, 0.3, rng)
    full = coo_to_csc(COOMatrix.from_dense(dense))
    return tril(full), dense


def dense_lower_to_csc(dense_lower: np.ndarray):
    """Dense lower triangle -> CSC lower triangle."""
    return coo_to_csc(COOMatrix.from_dense(np.tril(dense_lower)))
