"""Tests for the public SparseSolver API, baselines, and analysis layers."""

import numpy as np
import pytest

import repro
from repro.analysis import (
    load_imbalance,
    render_scaling_table,
    render_series,
    scaling_point,
    scaling_series,
)
from repro.baselines import (
    BASELINES,
    get_baseline,
    simulate_baseline,
    sequential_reference_time,
)
from repro.core import AnalyzeInfo, ParallelConfig, SparseSolver
from repro.gen import grid3d_laplacian
from repro.machine import BLUEGENE_P, GENERIC_CLUSTER
from repro.parallel import PlanOptions, simulate_factorization
from repro.sparse import CSCMatrix
from repro.sparse.ops import full_symmetric_from_lower, sym_matvec_lower
from repro.util.errors import ReproError, ShapeError
from repro.util.rng import make_rng


@pytest.fixture(scope="module")
def small():
    return grid3d_laplacian(4)


class TestTopLevelPackage:
    def test_lazy_exports(self):
        assert repro.SparseSolver is SparseSolver
        assert repro.__version__
        with pytest.raises(AttributeError):
            repro.nonexistent


class TestSparseSolverPhases:
    def test_analyze_info(self, small):
        solver = SparseSolver(small)
        info = solver.analyze()
        assert isinstance(info, AnalyzeInfo)
        assert info.n == 64
        assert info.nnz_factor >= info.nnz_a
        assert info.fill_ratio >= 1.0
        assert info.n_supernodes >= 1
        assert solver.info is info

    def test_info_before_analyze_raises(self, small):
        with pytest.raises(ReproError):
            SparseSolver(small).info

    def test_full_pipeline_residual(self, small):
        solver = SparseSolver(small)
        b = make_rng(1).standard_normal(64)
        res = solver.solve(b)
        assert res.residual <= 1e-12

    def test_solve_without_refine(self, small):
        solver = SparseSolver(small)
        b = make_rng(2).standard_normal(64)
        res = solver.solve(b, refine=False)
        assert res.refinement_iterations == 0
        assert res.residual <= 1e-10

    def test_accepts_full_symmetric_matrix(self, small):
        full = full_symmetric_from_lower(small)
        solver = SparseSolver(full)
        b = make_rng(3).standard_normal(64)
        assert solver.solve(b).residual <= 1e-12

    def test_rejects_asymmetric_full(self):
        d = np.array([[2.0, 1.0], [0.5, 3.0]])
        with pytest.raises(ShapeError):
            SparseSolver(CSCMatrix.from_dense(d))

    def test_rejects_rectangular(self):
        with pytest.raises(ShapeError):
            SparseSolver(CSCMatrix.from_dense(np.ones((2, 3))))

    def test_rejects_bad_method(self, small):
        with pytest.raises(ShapeError):
            SparseSolver(small, method="lu")

    def test_ldlt_method(self, small):
        solver = SparseSolver(small, method="ldlt")
        b = make_rng(4).standard_normal(64)
        assert solver.solve(b).residual <= 1e-12

    def test_explicit_permutation(self, small):
        solver = SparseSolver(small, ordering=np.arange(64))
        b = make_rng(5).standard_normal(64)
        assert solver.solve(b).residual <= 1e-12

    @pytest.mark.parametrize("ordering", ["nd", "amd", "rcm", "natural"])
    def test_ordering_names(self, small, ordering):
        solver = SparseSolver(small, ordering=ordering)
        b = make_rng(6).standard_normal(64)
        assert solver.solve(b).residual <= 1e-12


class TestSimulate:
    def test_basic_report(self, small):
        solver = SparseSolver(small)
        cfg = ParallelConfig(n_ranks=4, machine=GENERIC_CLUSTER, nb=8)
        rep = solver.simulate(cfg)
        assert rep.factor_time > 0
        assert rep.factor_gflops > 0
        assert rep.solve_time is None

    def test_with_solve_and_verify(self, small):
        solver = SparseSolver(small)
        b = make_rng(7).standard_normal(64)
        cfg = ParallelConfig(n_ranks=4, machine=GENERIC_CLUSTER, nb=8)
        rep = solver.simulate(cfg, b=b, verify=True)
        assert rep.solve_time is not None
        x = rep.solve_result.x
        r = np.max(np.abs(b - sym_matvec_lower(solver.lower, x)))
        assert r <= 1e-10

    def test_policy_flows_through(self, small):
        solver = SparseSolver(small)
        rep = solver.simulate(ParallelConfig(n_ranks=4, nb=8, policy="1d"))
        assert rep.factor_result.plan.opts.policy == "1d"

    def test_threads_flow_through(self, small):
        solver = SparseSolver(small)
        rep = solver.simulate(
            ParallelConfig(n_ranks=2, machine=BLUEGENE_P, nb=8, threads_per_rank=4)
        )
        assert rep.factor_result.threads_per_rank == 4


class TestBaselines:
    def test_registry(self):
        assert set(BASELINES) == {"wsmp-like", "mumps-like", "superlu-like"}
        assert get_baseline("wsmp-like").policy == "2d"
        with pytest.raises(ShapeError):
            get_baseline("pastix")

    def test_all_baselines_run_and_agree_numerically(self, small):
        solver = SparseSolver(small)
        solver.analyze()
        solver.factor()
        ref = solver.numeric.to_dense_l()
        for name in BASELINES:
            res = simulate_baseline(name, solver.sym, 4, GENERIC_CLUSTER, nb=8)
            np.testing.assert_allclose(
                res.to_dense_l(), ref, rtol=1e-9, atol=1e-9
            )

    def test_sequential_reference(self, small):
        solver = SparseSolver(small)
        solver.analyze()
        t1 = sequential_reference_time(solver.sym, GENERIC_CLUSTER, nb=8)
        assert t1 > 0


class TestAnalysis:
    @pytest.fixture(scope="class")
    def sym(self):
        solver = SparseSolver(grid3d_laplacian(5))
        solver.analyze()
        return solver.sym

    def test_scaling_series_shapes(self, sym):
        pts = scaling_series(sym, [1, 2, 4], GENERIC_CLUSTER, PlanOptions(nb=16))
        assert [pt.n_ranks for pt in pts] == [1, 2, 4]
        assert pts[0].speedup == pytest.approx(1.0)
        assert pts[0].efficiency == pytest.approx(1.0)
        assert all(pt.time > 0 for pt in pts)

    def test_efficiency_decreasing(self, sym):
        pts = scaling_series(sym, [1, 4, 16], GENERIC_CLUSTER, PlanOptions(nb=16))
        assert pts[2].efficiency <= pts[0].efficiency + 1e-9

    def test_scaling_point_cores(self, sym):
        res = simulate_factorization(
            sym, 2, BLUEGENE_P, PlanOptions(nb=16), threads_per_rank=2
        )
        pt = scaling_point(res, res.makespan * 2)
        assert pt.cores == 4

    def test_load_imbalance_at_least_one(self, sym):
        res = simulate_factorization(sym, 4, GENERIC_CLUSTER, PlanOptions(nb=16))
        assert load_imbalance(res) >= 1.0

    def test_render_scaling_table(self, sym):
        pts = scaling_series(sym, [1, 2], GENERIC_CLUSTER, PlanOptions(nb=16))
        text = render_scaling_table(pts, title="T")
        assert "ranks" in text and "Gflop/s" in text
        assert len(text.splitlines()) == 5

    def test_render_series(self):
        text = render_series("p", [1, 2], {"t": [0.5, 0.3]}, title="F")
        assert text.splitlines()[0] == "F"
        assert "0.5" in text
