"""Tests for the symbolic memory predictor against the executing engine."""

import pytest

from repro.analysis.memory import (
    min_feasible_ranks,
    predict_peak_bytes_per_rank,
    predict_rank_entries,
)
from repro.gen import grid3d_laplacian
from repro.graph import AdjacencyGraph
from repro.machine import GENERIC_CLUSTER
from repro.ordering import nested_dissection_order
from repro.parallel import FactorPlan, PlanOptions, simulate_factorization
from repro.symbolic import analyze
from repro.util.errors import ShapeError


@pytest.fixture(scope="module")
def sym():
    lower = grid3d_laplacian(6)
    g = AdjacencyGraph.from_symmetric_lower(lower)
    return analyze(lower, nested_dissection_order(g))


class TestPrediction:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_within_factor_of_des(self, sym, p):
        plan = FactorPlan(sym, p, PlanOptions(nb=16))
        predicted = predict_rank_entries(plan)
        res = simulate_factorization(sym, p, GENERIC_CLUSTER, PlanOptions(nb=16))
        measured = res.peak_entries_by_rank()
        # Same order of magnitude, rank by rank (stack transients differ).
        assert predicted.max() >= measured.max() / 4
        assert predicted.max() <= measured.max() * 4

    def test_memory_shrinks_with_p(self, sym):
        peaks = [
            predict_peak_bytes_per_rank(FactorPlan(sym, p, PlanOptions(nb=16)))
            for p in (1, 4, 16)
        ]
        assert peaks[2] < peaks[0]

    def test_entries_cover_factor(self, sym):
        plan = FactorPlan(sym, 4, PlanOptions(nb=16))
        predicted = predict_rank_entries(plan)
        # Total predicted storage at least the factor's stored entries.
        assert predicted.sum() >= sym.nnz_stored


class TestFeasibility:
    def test_min_ranks_monotone_in_budget(self, sym):
        big = min_feasible_ranks(sym, 10**9, PlanOptions(nb=16))
        small = min_feasible_ranks(
            sym, predict_peak_bytes_per_rank(FactorPlan(sym, 8, PlanOptions(nb=16))),
            PlanOptions(nb=16),
        )
        assert big == 1
        assert small >= 1

    def test_infeasible_raises(self, sym):
        with pytest.raises(ShapeError):
            min_feasible_ranks(sym, 64.0, PlanOptions(nb=16), max_ranks=8)

    def test_invalid_budget(self, sym):
        with pytest.raises(ShapeError):
            min_feasible_ranks(sym, 0.0)
