"""Tests for the simulated message-passing runtime."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import MachineModel, FlatTopology
from repro.simmpi import Comm, Compute, Local, Send, Simulator, payload_nbytes
from repro.simmpi.message import ENVELOPE_BYTES
from repro.util.errors import SimulationError


def machine(**over):
    kw = dict(
        name="t",
        flop_rate=1e9,
        dense_efficiency=1.0,
        small_kernel_efficiency=1.0,
        kernel_crossover=1,
        mem_bandwidth=1e9,
        alpha=1e-6,
        alpha_hop=0.0,
        beta=1e-9,
        topology=FlatTopology(),
    )
    kw.update(over)
    return MachineModel(**kw)


def run(program, p=4, m=None, **kw):
    return Simulator(m or machine(), p, **kw).run(program)


class TestPayloadSize:
    def test_array(self):
        a = np.zeros(100)
        assert payload_nbytes(a) == ENVELOPE_BYTES + 800

    def test_nested(self):
        assert payload_nbytes((np.zeros(2), 5)) == ENVELOPE_BYTES + 16 + 8

    def test_none(self):
        assert payload_nbytes(None) == ENVELOPE_BYTES

    def test_dict_and_str(self):
        assert payload_nbytes({"ab": 1.0}) == ENVELOPE_BYTES + 2 + 8


class TestPointToPoint:
    def test_ping(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(np.arange(4.0), dest=1, tag="x")
                return None
            data = yield comm.recv(source=0, tag="x")
            return data

        res = run(prog, p=2)
        np.testing.assert_array_equal(res.returns[1], np.arange(4.0))

    def test_ping_pong_time(self):
        m = machine()

        def prog(comm):
            if comm.rank == 0:
                yield comm.send(0, dest=1, tag=1)
                ack = yield comm.recv(source=1, tag=2)
                return ack
            v = yield comm.recv(source=0, tag=1)
            yield comm.send(v + 1, dest=0, tag=2)
            return None

        res = run(prog, p=2, m=m)
        assert res.returns[0] == 1
        # Two messages, each at least alpha.
        assert res.makespan >= 2 * m.alpha

    def test_messages_fifo_per_key(self):
        def prog(comm):
            if comm.rank == 0:
                for k in range(5):
                    yield comm.send(k, dest=1, tag="t")
                return None
            out = []
            for _ in range(5):
                out.append((yield comm.recv(source=0, tag="t")))
            return out

        res = run(prog, p=2)
        assert res.returns[1] == [0, 1, 2, 3, 4]

    def test_tags_demultiplex(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send("a", dest=1, tag="A")
                yield comm.send("b", dest=1, tag="B")
                return None
            b = yield comm.recv(source=0, tag="B")
            a = yield comm.recv(source=0, tag="A")
            return (a, b)

        res = run(prog, p=2)
        assert res.returns[1] == ("a", "b")

    def test_deadlock_detected(self):
        def prog(comm):
            _ = yield comm.recv(source=(comm.rank + 1) % comm.size, tag=0)

        with pytest.raises(SimulationError, match="deadlock"):
            run(prog, p=2)

    def test_send_invalid_rank(self):
        def prog(comm):
            yield Send(99, "t", None)

        with pytest.raises(SimulationError):
            run(prog, p=2)

    def test_rank_exception_wrapped(self):
        def prog(comm):
            yield Local()
            raise ValueError("boom")

        with pytest.raises(SimulationError, match="boom"):
            run(prog, p=2)

    def test_non_generator_program(self):
        def prog(comm):
            return 42

        with pytest.raises(SimulationError):
            run(prog, p=2)


class TestCompute:
    def test_compute_advances_clock(self):
        m = machine()

        def prog(comm):
            yield Compute(flops=1e9)
            return None

        res = run(prog, p=2, m=m)
        assert res.makespan == pytest.approx(1.0)
        assert res.rank_stats[0].compute_time == pytest.approx(1.0)

    def test_mem_bytes_charged(self):
        def prog(comm):
            yield Compute(mem_bytes=1e9)
            return None

        res = run(prog, p=1)
        assert res.makespan == pytest.approx(1.0)

    def test_ranks_advance_independently(self):
        def prog(comm):
            yield Compute(flops=1e9 * (comm.rank + 1))
            return None

        res = run(prog, p=3)
        times = [s.finish_time for s in res.rank_stats]
        assert times == pytest.approx([1.0, 2.0, 3.0])
        assert res.makespan == pytest.approx(3.0)

    def test_wait_time_accounting(self):
        def prog(comm):
            if comm.rank == 0:
                yield Compute(flops=1e9)
                yield comm.send(1, dest=1, tag=0)
                return None
            _ = yield comm.recv(source=0, tag=0)
            return None

        res = run(prog, p=2)
        assert res.rank_stats[1].wait_time >= 0.9  # waited ~1s


class TestCollectives:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 7, 8, 16])
    def test_bcast(self, p):
        def prog(comm):
            data = np.arange(3.0) if comm.rank == 0 else None
            out = yield from comm.bcast(data, root=0)
            return out.sum()

        res = run(prog, p=p)
        assert all(v == 3.0 for v in res.returns)

    @pytest.mark.parametrize("p", [1, 2, 5, 8])
    @pytest.mark.parametrize("root", [0, 1])
    def test_bcast_nonzero_root(self, p, root):
        if root >= p:
            pytest.skip("root out of range")

        def prog(comm):
            data = 42 if comm.rank == root else None
            out = yield from comm.bcast(data, root=root)
            return out

        res = run(prog, p=p)
        assert res.returns == [42] * p

    @pytest.mark.parametrize("p", [1, 2, 3, 6, 8])
    def test_reduce_sum(self, p):
        def prog(comm):
            out = yield from comm.reduce(comm.rank + 1)
            return out

        res = run(prog, p=p)
        assert res.returns[0] == p * (p + 1) // 2
        assert all(v is None for v in res.returns[1:])

    def test_reduce_custom_op(self):
        def prog(comm):
            out = yield from comm.reduce(comm.rank, op=max)
            return out

        res = run(prog, p=5)
        assert res.returns[0] == 4

    @pytest.mark.parametrize("p", [1, 2, 4, 7])
    def test_allreduce(self, p):
        def prog(comm):
            out = yield from comm.allreduce(np.full(2, float(comm.rank)))
            return out

        res = run(prog, p=p)
        expected = np.full(2, sum(range(p)), dtype=float)
        for v in res.returns:
            np.testing.assert_array_equal(v, expected)

    @pytest.mark.parametrize("p", [1, 2, 5, 8])
    def test_gather(self, p):
        def prog(comm):
            out = yield from comm.gather(comm.rank * 10)
            return out

        res = run(prog, p=p)
        assert res.returns[0] == [r * 10 for r in range(p)]

    @pytest.mark.parametrize("p", [1, 3, 4])
    def test_allgather(self, p):
        def prog(comm):
            out = yield from comm.allgather(comm.rank)
            return out

        res = run(prog, p=p)
        assert all(v == list(range(p)) for v in res.returns)

    @pytest.mark.parametrize("p", [2, 5])
    def test_scatter(self, p):
        def prog(comm):
            vals = [i * i for i in range(comm.size)] if comm.rank == 0 else None
            out = yield from comm.scatter(vals, root=0)
            return out

        res = run(prog, p=p)
        assert res.returns == [i * i for i in range(p)]

    def test_barrier_synchronizes(self):
        def prog(comm):
            if comm.rank == 0:
                yield Compute(flops=2e9)
            yield from comm.barrier()
            return None

        res = run(prog, p=4)
        # Everyone finishes at >= rank 0's compute time.
        assert all(s.finish_time >= 2.0 for s in res.rank_stats)

    def test_subcommunicator(self):
        def prog(comm):
            if comm.rank < 2:
                sub = comm.sub([0, 1], ctx="lo")
            else:
                sub = comm.sub([2, 3], ctx="hi")
            out = yield from sub.allreduce(comm.rank)
            return out

        res = run(prog, p=4)
        assert res.returns == [1, 1, 5, 5]

    def test_collective_sequences_do_not_collide(self):
        def prog(comm):
            a = yield from comm.allreduce(1)
            b = yield from comm.allreduce(comm.rank)
            return (a, b)

        res = run(prog, p=4)
        assert all(v == (4, 6) for v in res.returns)


class TestLedger:
    def test_conservation(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(np.zeros(10), dest=1, tag=0)
                return None
            _ = yield comm.recv(source=0, tag=0)
            return None

        res = run(prog, p=2)
        led = res.ledger
        assert led.n_messages == 1
        assert sum(led.sent_by_rank) == sum(led.recv_by_rank) == 1
        assert sum(led.bytes_sent_by_rank) == sum(led.bytes_recv_by_rank)
        assert led.total_bytes == payload_nbytes(np.zeros(10))

    def test_bcast_message_count(self):
        def prog(comm):
            _ = yield from comm.bcast(1, root=0)
            return None

        res = run(prog, p=8)
        # A binomial bcast over p ranks sends exactly p-1 messages.
        assert res.ledger.n_messages == 7

    def test_mean_message_bytes(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(None, dest=1, tag=0, nbytes=100)
                return None
            _ = yield comm.recv(source=0, tag=0)
            return None

        res = run(prog, p=2)
        assert res.ledger.mean_message_bytes == 100


class TestDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 9), st.integers(0, 100))
    def test_property_repeatable(self, p, seed):
        def prog(comm):
            rng = np.random.default_rng(seed + comm.rank)
            acc = rng.standard_normal(4)
            out = yield from comm.allreduce(acc)
            yield Compute(flops=float(comm.rank) * 1e6)
            return out

        r1 = run(prog, p=p)
        r2 = run(prog, p=p)
        assert r1.makespan == r2.makespan
        for a, b in zip(r1.returns, r2.returns):
            np.testing.assert_array_equal(a, b)
        assert r1.ledger.n_messages == r2.ledger.n_messages


class TestCommValidation:
    def test_rank_not_in_group(self):
        with pytest.raises(SimulationError):
            Comm(5, [0, 1, 2])

    def test_duplicate_group(self):
        with pytest.raises(SimulationError):
            Comm(0, [0, 0, 1])

    def test_local_global_mapping(self):
        c = Comm(7, [3, 7, 9])
        assert c.rank == 1
        assert c.size == 3
        assert c.global_rank(2) == 9

    def test_scatter_requires_values_on_root(self):
        def prog(comm):
            _ = yield from comm.scatter(None, root=0)

        with pytest.raises(SimulationError):
            run(prog, p=2)


class TestSelfSend:
    def test_send_to_self_is_memcpy(self):
        def prog(comm):
            yield comm.send(np.arange(3.0), dest=comm.rank, tag="self")
            got = yield comm.recv(source=comm.rank, tag="self")
            return got

        res = run(prog, p=2)
        np.testing.assert_array_equal(res.returns[0], np.arange(3.0))
        # self-messages pay memory-copy time, not network alpha
        assert res.rank_stats[0].send_time < machine().alpha
