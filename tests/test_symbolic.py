"""Tests for repro.symbolic: etree, postorder, patterns, supernodes, analyze."""

import numpy as np
import pytest
import scipy.linalg
from hypothesis import given, settings, strategies as st

from repro.gen import grid2d_laplacian, grid3d_laplacian, random_spd_sparse
from repro.graph import AdjacencyGraph
from repro.ordering import amd_order, nested_dissection_order
from repro.sparse import CSCMatrix
from repro.sparse.ops import full_symmetric_from_lower
from repro.sparse.permute import permute_symmetric_lower
from repro.symbolic import (
    etree,
    EliminationForest,
    postorder,
    is_postordered,
    children_lists,
    column_patterns,
    symbolic_cholesky,
    fundamental_supernodes,
    analyze,
    AnalyzeOptions,
)
from repro.symbolic.postorder import relabel_parent, first_descendants
from repro.symbolic.analyze import dense_partial_factor_flops
from repro.util.errors import ShapeError


def arrow_lower(n):
    """Arrowhead matrix: dense last row, diagonal elsewhere."""
    d = np.eye(n) * 10.0
    d[n - 1, :] = 1.0
    d[n - 1, n - 1] = 10.0 * n
    return CSCMatrix.from_dense(np.tril(d))


class TestEtree:
    def test_diagonal_matrix_forest(self):
        lower = CSCMatrix.from_dense(np.eye(4))
        parent = etree(lower)
        np.testing.assert_array_equal(parent, [-1, -1, -1, -1])

    def test_tridiagonal_chain(self):
        d = np.eye(5) * 4 + np.diag(-np.ones(4), -1) + np.diag(-np.ones(4), 1)
        lower = CSCMatrix.from_dense(np.tril(d))
        parent = etree(lower)
        np.testing.assert_array_equal(parent, [1, 2, 3, 4, -1])

    def test_arrowhead(self):
        parent = etree(arrow_lower(5))
        np.testing.assert_array_equal(parent, [4, 4, 4, 4, -1])

    def test_dense_matrix_chain(self):
        n = 4
        d = np.ones((n, n)) + n * np.eye(n)
        parent = etree(CSCMatrix.from_dense(np.tril(d)))
        np.testing.assert_array_equal(parent, [1, 2, 3, -1])

    def test_rectangular_rejected(self):
        with pytest.raises(ShapeError):
            etree(CSCMatrix.from_dense(np.ones((2, 3))))

    def test_parent_is_min_offdiag_row_of_l(self):
        """Cross-check against the definition via dense Cholesky structure."""
        lower = grid2d_laplacian(4)
        parent = etree(lower)
        full = full_symmetric_from_lower(lower).to_dense()
        chol = scipy.linalg.cholesky(full, lower=True)
        chol[np.abs(chol) < 1e-12] = 0.0
        n = lower.shape[0]
        for j in range(n):
            below = np.flatnonzero(chol[:, j])
            below = below[below > j]
            expected = below[0] if below.size else -1
            assert parent[j] == expected


class TestEliminationForest:
    def test_children_and_roots(self):
        parent = np.array([2, 2, 4, 4, -1], dtype=np.int64)
        f = EliminationForest(parent)
        assert f.roots == [4]
        assert f.children[2] == [0, 1]
        assert f.children[4] == [2, 3]

    def test_subtree_sizes(self):
        parent = np.array([2, 2, 4, 4, -1], dtype=np.int64)
        f = EliminationForest(parent)
        np.testing.assert_array_equal(f.subtree_sizes(), [1, 1, 3, 1, 5])

    def test_depth(self):
        parent = np.array([2, 2, 4, 4, -1], dtype=np.int64)
        f = EliminationForest(parent)
        np.testing.assert_array_equal(f.depth(), [2, 2, 1, 1, 0])

    def test_topological_order_parents_first(self):
        parent = np.array([2, 2, 4, 4, -1], dtype=np.int64)
        f = EliminationForest(parent)
        order = f.topological_order()
        pos = {v: i for i, v in enumerate(order)}
        for j in range(5):
            if parent[j] >= 0:
                assert pos[int(parent[j])] < pos[j]


class TestPostorder:
    def test_postorder_chain(self):
        parent = np.array([1, 2, 3, -1], dtype=np.int64)
        np.testing.assert_array_equal(postorder(parent), [0, 1, 2, 3])

    def test_postorder_visits_children_first(self):
        parent = np.array([4, 4, 4, 4, -1], dtype=np.int64)
        post = postorder(parent)
        assert post[-1] == 4

    def test_relabel_is_postordered(self):
        parent = np.array([4, 0, 4, 2, -1, 4], dtype=np.int64)
        post = postorder(parent)
        new_parent = relabel_parent(parent, post)
        assert is_postordered(new_parent)

    def test_forest_postorder(self):
        parent = np.array([-1, 0, -1, 2], dtype=np.int64)
        post = postorder(parent)
        assert sorted(post.tolist()) == [0, 1, 2, 3]
        new_parent = relabel_parent(parent, post)
        assert is_postordered(new_parent)

    def test_is_postordered_detects_violation(self):
        assert not is_postordered(np.array([-1, 0], dtype=np.int64))
        assert is_postordered(np.array([1, -1], dtype=np.int64))

    def test_first_descendants_contiguous_subtrees(self):
        parent = np.array([2, 2, 6, 5, 5, 6, -1], dtype=np.int64)
        assert is_postordered(parent)
        first = first_descendants(parent)
        np.testing.assert_array_equal(first, [0, 1, 0, 3, 4, 3, 0])

    def test_children_lists(self):
        ch = children_lists(np.array([2, 2, -1], dtype=np.int64))
        assert ch == [[], [], [0, 1]]


class TestColumnPatterns:
    def test_requires_postorder(self):
        lower = CSCMatrix.from_dense(np.eye(3))
        with pytest.raises(ShapeError):
            column_patterns(lower, np.array([-1, 0, -1], dtype=np.int64))

    def test_matches_dense_cholesky_structure(self):
        lower = grid2d_laplacian(5)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        perm = amd_order(g)
        sym = analyze(lower, perm, AnalyzeOptions(amalgamate=False))
        full = full_symmetric_from_lower(sym.permuted_lower).to_dense()
        chol = scipy.linalg.cholesky(full, lower=True)
        chol[np.abs(chol) < 1e-12] = 0.0
        patterns, _, _ = symbolic_cholesky(sym.permuted_lower, sym.parent)
        for j in range(lower.shape[0]):
            dense_rows = np.flatnonzero(chol[:, j])
            np.testing.assert_array_equal(patterns[j], dense_rows)

    def test_counts_sum(self):
        lower = grid2d_laplacian(4)
        parent = etree(lower)
        post = postorder(parent)
        a2 = permute_symmetric_lower(lower, post)
        p2 = relabel_parent(parent, post)
        patterns, counts, nnz = symbolic_cholesky(a2, p2)
        assert nnz == sum(p.size for p in patterns)
        assert np.all(counts >= 1)


class TestSupernodes:
    def test_dense_matrix_single_supernode(self):
        n = 5
        d = np.ones((n, n)) + n * np.eye(n)
        lower = CSCMatrix.from_dense(np.tril(d))
        parent = etree(lower)
        patterns, counts, _ = symbolic_cholesky(lower, parent)
        part = fundamental_supernodes(parent, counts)
        assert part.n_supernodes == 1
        assert part.width(0) == n

    def test_diagonal_matrix_all_singletons(self):
        lower = CSCMatrix.from_dense(np.eye(4) * 2)
        parent = etree(lower)
        _, counts, _ = symbolic_cholesky(lower, parent)
        part = fundamental_supernodes(parent, counts)
        assert part.n_supernodes == 4

    def test_col_to_sn_consistent(self):
        lower = grid2d_laplacian(5)
        sym = analyze(
            lower,
            nested_dissection_order(AdjacencyGraph.from_symmetric_lower(lower)),
        )
        part = sym.partition
        for s in range(part.n_supernodes):
            for c in part.columns(s):
                assert part.col_to_sn[c] == s

    def test_supernode_rows_prefix_is_own_columns(self):
        lower = grid3d_laplacian(4)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        sym = analyze(lower, nested_dissection_order(g))
        for s in range(sym.n_supernodes):
            w = sym.supernode_width(s)
            np.testing.assert_array_equal(
                sym.sn_rows[s][:w], sym.partition.columns(s)
            )

    def test_amalgamation_reduces_supernode_count(self):
        lower = grid3d_laplacian(5)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        perm = nested_dissection_order(g)
        plain = analyze(lower, perm, AnalyzeOptions(amalgamate=False))
        merged = analyze(lower, perm, AnalyzeOptions(amalgamate=True))
        assert merged.n_supernodes <= plain.n_supernodes
        assert merged.nnz_stored >= plain.nnz_factor

    def test_amalgamation_bounded_overhead(self):
        lower = grid3d_laplacian(5)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        perm = nested_dissection_order(g)
        merged = analyze(lower, perm, AnalyzeOptions(amalgamate=True))
        assert merged.nnz_stored <= 2.0 * merged.nnz_factor


class TestAnalyze:
    @pytest.mark.parametrize("nx", [3, 5])
    def test_basic_invariants(self, nx):
        lower = grid2d_laplacian(nx)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        sym = analyze(lower, amd_order(g))
        n = lower.shape[0]
        assert sym.n == n
        assert is_postordered(sym.parent)
        # Supernode columns partition [0, n).
        cols = np.concatenate(
            [sym.partition.columns(s) for s in range(sym.n_supernodes)]
        )
        np.testing.assert_array_equal(np.sort(cols), np.arange(n))
        # Assembly-tree parents come after children.
        for s in range(sym.n_supernodes):
            p = int(sym.sn_parent[s])
            if p >= 0:
                assert p > s

    def test_update_rows_in_parent(self):
        lower = grid3d_laplacian(4)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        sym = analyze(lower, nested_dissection_order(g))
        for s in range(sym.n_supernodes):
            p = int(sym.sn_parent[s])
            if p < 0:
                continue
            w = sym.supernode_width(s)
            update = sym.sn_rows[s][w:]
            assert np.all(np.isin(update, sym.sn_rows[p]))

    def test_flops_monotone_in_problem_size(self):
        g4 = grid2d_laplacian(4)
        g6 = grid2d_laplacian(6)
        s4 = analyze(g4, amd_order(AdjacencyGraph.from_symmetric_lower(g4)))
        s6 = analyze(g6, amd_order(AdjacencyGraph.from_symmetric_lower(g6)))
        assert s6.factor_flops > s4.factor_flops
        assert s6.solve_flops > s4.solve_flops

    def test_supernode_flops_total_at_least_column_flops(self):
        lower = grid3d_laplacian(4)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        sym = analyze(lower, nested_dissection_order(g))
        sn_total = sum(sym.supernode_flops(s) for s in range(sym.n_supernodes))
        assert sn_total >= sym.factor_flops  # amalgamation only adds work

    def test_dense_partial_factor_flops_full_elimination(self):
        # Eliminating all m pivots of an m×m front = dense Cholesky ≈ m³/3
        m = 30
        f = dense_partial_factor_flops(m, m)
        assert abs(f - m**3 / 3) / (m**3 / 3) < 0.15

    def test_perm_roundtrip(self):
        lower = grid2d_laplacian(4)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        sym = analyze(lower, amd_order(g))
        np.testing.assert_array_equal(np.sort(sym.perm), np.arange(16))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 30), st.integers(0, 3000))
    def test_property_random_spd(self, n, seed):
        lower = random_spd_sparse(n, avg_degree=3, seed=seed)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        sym = analyze(lower, amd_order(g))
        assert is_postordered(sym.parent)
        assert sym.nnz_factor >= lower.nnz
        assert sym.nnz_stored >= sym.nnz_factor
        for s in range(sym.n_supernodes):
            w = sym.supernode_width(s)
            np.testing.assert_array_equal(
                sym.sn_rows[s][:w], sym.partition.columns(s)
            )
