"""Drill-down tests for small under-covered surfaces."""

import numpy as np
import pytest

from repro.gen import grid2d_laplacian
from repro.graph import AdjacencyGraph
from repro.ordering import nested_dissection_order
from repro.parallel import FactorPlan, PlanOptions
from repro.simmpi.ledger import MessageLedger
from repro.simmpi.trace import Trace, TraceEvent
from repro.sparse import CSCMatrix
from repro.symbolic import analyze


class TestLedgerUnit:
    def test_record_and_totals(self):
        led = MessageLedger(3)
        led.record_send(0, 1, 100, 2)
        led.record_recv(1, 100)
        led.record_send(1, 2, 50, 1)
        led.record_recv(2, 50)
        assert led.n_messages == 2
        assert led.total_bytes == 150
        assert led.hop_bytes == 250
        assert led.sent_by_rank == [1, 1, 0]
        assert led.recv_by_rank == [0, 1, 1]
        assert led.mean_message_bytes == 75

    def test_empty_mean(self):
        assert MessageLedger(1).mean_message_bytes == 0.0


class TestTraceUnit:
    def test_zero_duration_dropped(self):
        t = Trace()
        t.add(0, "compute", 1.0, 1.0)
        assert t.events == []

    def test_span_and_totals(self):
        t = Trace()
        t.add(0, "compute", 0.0, 2.0, 100)
        t.add(1, "wait", 1.0, 3.0)
        assert t.span() == 3.0
        assert t.total("compute") == 2.0
        assert t.total("wait") == 2.0
        assert t.for_rank(1) == [TraceEvent(1, "wait", 1.0, 3.0, 0.0)]

    def test_event_duration(self):
        e = TraceEvent(0, "send", 0.5, 1.25, 8)
        assert e.duration == 0.75


class TestPlanInternals:
    @pytest.fixture(scope="class")
    def plan(self):
        lower = grid2d_laplacian(6)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        sym = analyze(lower, nested_dissection_order(g))
        return FactorPlan(sym, 4, PlanOptions(nb=8))

    def test_ea_runs_cached(self, plan):
        children = [
            c
            for c in range(plan.sym.n_supernodes)
            if plan.sym.sn_parent[c] >= 0
        ]
        c = children[0]
        assert plan.ea_runs(c) is plan.ea_runs(c)
        assert plan.parent_positions(c) is plan.parent_positions(c)

    def test_block_of_boundaries(self, plan):
        for s in plan.mapping.dist_supernodes:
            d = plan.dist[s]
            assert int(d.block_of(np.asarray([0]))[0]) == 0
            last = d.m - 1
            assert int(d.block_of(np.asarray([last]))[0]) == d.nblocks - 1

    def test_row_owner_in_group(self, plan):
        for s in plan.mapping.dist_supernodes:
            d = plan.dist[s]
            for bi in range(d.nblocks):
                assert d.row_owner(bi) in d.group

    def test_parent_positions_error_for_root(self, plan):
        from repro.util.errors import ShapeError

        roots = plan.sym.roots()
        with pytest.raises(ShapeError):
            plan.parent_positions(roots[-1])


class TestSparseEdges:
    def test_diagonal_rectangular(self):
        m = CSCMatrix.from_dense(np.array([[1.0, 0.0, 2.0], [0.0, 3.0, 0.0]]))
        np.testing.assert_array_equal(m.diagonal(), [1.0, 3.0])

    def test_graph_subgraph_empty_selection(self):
        g = AdjacencyGraph.from_edges(4, [0, 1], [1, 2])
        sub, vmap = g.subgraph([])
        assert sub.n == 0
        assert vmap.size == 0
