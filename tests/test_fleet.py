"""Serving-fleet tests: EDF scheduling, admission control, sharded cache,
fleet-vs-single bitwise identity, non-blocking retry parks, and metrics
atomicity under concurrent workers."""

import sys

import numpy as np
import pytest

from repro.core import SparseSolver
from repro.gen import grid2d_laplacian, random_spd_sparse
from repro.obs.metrics import MetricsRegistry
from repro.service import (
    COMPLETED,
    EXPIRED,
    AdmissionError,
    AnalysisEntry,
    JobQueue,
    ServiceConfig,
    ShardedAnalysisCache,
    SolverService,
    pattern_fingerprint,
)
from repro.util.errors import ReproError, ShapeError
from repro.util.rng import make_rng

pytestmark = pytest.mark.fleet


class FakeClock:
    """Deterministic service clock advancing a fixed step per call."""

    def __init__(self, step=1.0):
        self.t = 0.0
        self.step = step

    def __call__(self):
        self.t += self.step
        return self.t


def flaky(real, failures, exc):
    """Wrap *real* to raise *exc* for the first *failures* calls."""
    state = {"left": failures}

    def wrapper(*args, **kwargs):
        if state["left"] > 0:
            state["left"] -= 1
            raise exc
        return real(*args, **kwargs)

    return wrapper


def drain_order(queue):
    """Job ids in the order the queue would dispatch them (no coalescing)."""
    order = []
    while len(queue):
        order.append(queue.pop_batch(coalesce=False)[0].job_id)
    return order


class TestEDFOrdering:
    def service(self, **cfg):
        return SolverService(
            ServiceConfig(coalesce=False, **cfg),
            clock=FakeClock(),
            sleep=lambda s: None,
        )

    def distinct(self, k):
        """k distinct-pattern matrices (no coalescing interference)."""
        return [random_spd_sparse(16 + 2 * i, seed=i) for i in range(k)]

    def test_earliest_deadline_beats_priority(self):
        svc = self.service()
        m = self.distinct(3)
        late = svc.submit(m[0], np.ones(m[0].shape[0]), priority=-9, deadline=900.0)
        soon = svc.submit(m[1], np.ones(m[1].shape[0]), priority=9, deadline=100.0)
        mid = svc.submit(m[2], np.ones(m[2].shape[0]), priority=0, deadline=500.0)
        assert drain_order(svc.queue) == [soon, mid, late]

    def test_priority_breaks_deadline_ties(self):
        svc = self.service()
        m = self.distinct(3)
        ids = [
            svc.submit(mi, np.ones(mi.shape[0]), priority=p, deadline=100.0)
            for mi, p in zip(m, [2, 0, 1])
        ]
        assert drain_order(svc.queue) == [ids[1], ids[2], ids[0]]

    def test_no_deadline_sorts_behind_any_deadline(self):
        svc = self.service()
        m = self.distinct(3)
        urgent_nodl = svc.submit(m[0], np.ones(m[0].shape[0]), priority=-99)
        slack = svc.submit(m[1], np.ones(m[1].shape[0]), priority=99, deadline=1e9)
        nodl = svc.submit(m[2], np.ones(m[2].shape[0]), priority=0)
        # Any deadline-carrying job outranks deadline-free ones; among the
        # latter, priority (then FIFO) decides.
        assert drain_order(svc.queue) == [slack, urgent_nodl, nodl]

    def test_priority_policy_ignores_deadlines_for_ordering(self):
        svc = self.service(queue_policy="priority")
        m = self.distinct(2)
        soon = svc.submit(m[0], np.ones(m[0].shape[0]), priority=5, deadline=10.0)
        urgent = svc.submit(m[1], np.ones(m[1].shape[0]), priority=0, deadline=1e9)
        assert drain_order(svc.queue) == [urgent, soon]

    def test_fifo_among_equals(self):
        svc = self.service()
        m = self.distinct(4)
        ids = [svc.submit(mi, np.ones(mi.shape[0])) for mi in m]
        assert drain_order(svc.queue) == ids

    def test_unknown_policy_rejected(self):
        with pytest.raises(ShapeError):
            JobQueue(policy="fifo")

    def test_parked_job_waits_for_not_before(self):
        svc = self.service()
        m = self.distinct(2)
        a = svc.submit(m[0], np.ones(m[0].shape[0]))
        b = svc.submit(m[1], np.ones(m[1].shape[0]))
        q = svc.queue
        batch = q.pop_batch(coalesce=False)
        assert batch[0].job_id == a
        batch[0].not_before = 50.0
        q.push(batch[0])
        assert q.next_ready_at() == 50.0
        # Before the wake time only b is dispatchable; a is parked.
        assert q.pop_batch(coalesce=False, now=10.0)[0].job_id == b
        assert q.pop_batch(coalesce=False, now=10.0) == []
        assert len(q) == 1  # parked jobs still count as pending
        assert q.pop_batch(coalesce=False, now=50.0)[0].job_id == a

    def test_exclude_defers_inflight_fingerprints(self):
        svc = self.service()
        m = grid2d_laplacian(4)
        other = random_spd_sparse(20, seed=1)
        a1 = svc.submit(m, np.ones(16))
        a2 = svc.submit(m, np.ones(16) * 2)
        b = svc.submit(other, np.ones(20))
        q = svc.queue
        first = q.pop_batch(coalesce=False)[0]
        assert first.job_id == a1
        inflight = {first.fingerprint.key}
        # Same-pattern a2 is skipped (not dropped) while a1 is in flight.
        assert q.pop_batch(coalesce=False, exclude=inflight)[0].job_id == b
        assert q.pop_batch(coalesce=False, exclude=inflight) == []
        assert len(q) == 1
        assert q.pop_batch(coalesce=False, exclude=set())[0].job_id == a2

    def test_tenant_pending_counts(self):
        svc = self.service()
        m = self.distinct(3)
        svc.submit(m[0], np.ones(m[0].shape[0]), tenant="a")
        svc.submit(m[1], np.ones(m[1].shape[0]), tenant="a")
        svc.submit(m[2], np.ones(m[2].shape[0]), tenant="b")
        q = svc.queue
        assert q.tenant_pending("a") == 2
        assert q.pending_by_tenant() == {"a": 2, "b": 1}
        q.pop_batch(coalesce=False)
        assert q.tenant_pending("a") == 1
        drain_order(q)
        assert q.pending_by_tenant() == {}


class TestAdmission:
    def test_quota_exhaustion_and_recovery(self):
        svc = SolverService(ServiceConfig(tenant_quota=2))
        m = grid2d_laplacian(4)
        svc.submit(m, np.ones(16), tenant="a")
        svc.submit(m, np.ones(16) * 2, tenant="a")
        with pytest.raises(AdmissionError) as exc:
            svc.submit(m, np.ones(16) * 3, tenant="a")
        assert exc.value.reason == "quota"
        # Another tenant is unaffected by a's quota exhaustion.
        svc.submit(m, np.ones(16), tenant="b")
        res = svc.drain()
        assert all(r.status == COMPLETED for r in res.values())
        # Draining frees the quota: the tenant is admitted again.
        svc.submit(m, np.ones(16), tenant="a")
        assert svc.metrics.counter("service_admission_rejected_quota_total") == 1

    def test_backpressure_rejection(self):
        svc = SolverService(ServiceConfig(max_pending=2))
        m = grid2d_laplacian(4)
        svc.submit(m, np.ones(16))
        svc.submit(m, np.ones(16) * 2)
        with pytest.raises(AdmissionError) as exc:
            svc.submit(m, np.ones(16) * 3)
        assert exc.value.reason == "backpressure"
        assert svc.metrics.counter("jobs_submitted") == 2
        assert (
            svc.metrics.counter("service_admission_rejected_backpressure_total")
            == 1
        )
        svc.drain()
        svc.submit(m, np.ones(16) * 3)  # room again after the drain

    def test_rejected_jobs_never_enqueued(self):
        svc = SolverService(ServiceConfig(max_pending=1))
        m = grid2d_laplacian(4)
        svc.submit(m, np.ones(16))
        for _ in range(3):
            with pytest.raises(AdmissionError):
                svc.submit(m, np.ones(16))
        assert len(svc.queue) == 1
        assert len(svc.drain()) == 1


class TestShardedCache:
    def entry(self, size):
        lower = random_spd_sparse(size, seed=size)
        solver = SparseSolver(lower, ordering="amd")
        solver.analyze()
        return AnalysisEntry(
            fingerprint=pattern_fingerprint(lower), solver=solver
        )

    def test_shard_routing_is_deterministic(self):
        cache = ShardedAnalysisCache(capacity=8, shards=4)
        for size in range(16, 40, 2):
            fp = self.entry(size).fingerprint
            assert cache.shard_of(fp) == cache.shard_of(fp)
            assert 0 <= cache.shard_of(fp) < 4

    def test_shard_isolation_and_merged_stats(self):
        # One slot per shard: same-shard inserts evict each other, but
        # never entries living on other shards.
        cache = ShardedAnalysisCache(capacity=4, shards=4)
        entries = [self.entry(s) for s in range(16, 48, 2)]
        by_shard = {}
        for e in entries:
            cache.put(e)
            by_shard.setdefault(cache.shard_of(e.fingerprint), []).append(e)
        assert sum(len(v) for v in by_shard.values()) == len(entries)
        for shard, owned in by_shard.items():
            # Only the newest entry of each shard survived its own slot.
            assert cache.get(owned[-1].fingerprint) is owned[-1]
            for old in owned[:-1]:
                assert cache.get(old.fingerprint) is None
        merged = cache.stats
        parts = cache.shard_stats()
        assert merged.inserts == sum(p.inserts for p in parts) == len(entries)
        assert merged.hits == sum(p.hits for p in parts)
        assert merged.misses == sum(p.misses for p in parts)
        assert merged.evictions == sum(p.evictions for p in parts)
        assert sum(cache.shard_sizes()) == len(cache)

    def test_capacity_split_and_validation(self):
        cache = ShardedAnalysisCache(capacity=5, shards=2)
        assert cache.capacity == 6  # ceil(5/2) per shard
        with pytest.raises(ShapeError):
            ShardedAnalysisCache(capacity=4, shards=0)


class TestFleetDrain:
    def trace(self):
        mats = [random_spd_sparse(24 + 4 * i, seed=i) for i in range(5)]
        rng = make_rng(11)
        reqs = []
        for rep in range(3):
            for i, m in enumerate(mats):
                reqs.append((m, rng.standard_normal(m.shape[0]), i % 3))
        return reqs

    def run(self, cfg):
        svc = SolverService(cfg)
        ids = [
            svc.submit(m, b, priority=p, deadline=svc.now() + 60.0)
            for m, b, p in self.trace()
        ]
        res = svc.drain()
        return svc, [res[i] for i in ids]

    def test_fleet_bitwise_identical_to_single(self):
        _, single = self.run(ServiceConfig())
        svc, fleet = self.run(ServiceConfig(fleet_workers=4, shards=4))
        assert all(r.status == COMPLETED for r in single)
        assert all(r.status == COMPLETED for r in fleet)
        for a, b in zip(single, fleet):
            assert np.array_equal(a.x, b.x)
        # The scheduler never overlapped same-fingerprint batches, so the
        # cache did the same hits/misses as the sequential drain.
        assert svc.cache.stats.misses == 5

    def test_fleet_expires_past_deadlines(self):
        svc = SolverService(ServiceConfig(fleet_workers=2))
        m = grid2d_laplacian(4)
        dead = svc.submit(m, np.ones(16), deadline=svc.now() - 1.0)
        live = svc.submit(m, np.ones(16) * 2, deadline=svc.now() + 60.0)
        res = svc.drain()
        assert res[dead].status == EXPIRED
        assert res[live].status == COMPLETED
        assert svc.metrics.counter("service_deadline_missed_total") == 1
        assert svc.deadline_miss_ratio == 0.5

    def test_fleet_retries_requeued_batches(self, monkeypatch):
        import repro.core.solver as core_solver

        monkeypatch.setattr(
            core_solver,
            "multifrontal_factor",
            flaky(core_solver.multifrontal_factor, 2, ReproError("blip")),
        )
        svc = SolverService(
            ServiceConfig(fleet_workers=3, max_retries=3, retry_backoff=1e-4)
        )
        m = grid2d_laplacian(5)
        ids = [svc.submit(m, np.ones(25) * (i + 1.0)) for i in range(3)]
        res = svc.drain()
        assert all(res[i].status == COMPLETED for i in ids)
        assert svc.metrics.counter("retries") >= 1

    def test_requeue_does_not_stall_other_jobs(self, monkeypatch):
        """The retry backoff parks the flaky batch; the other job is
        dispatched in the meantime instead of waiting out the sleep."""
        import repro.core.solver as core_solver

        real = core_solver.multifrontal_factor
        state = {"failed": False}

        def flaky_first_pattern(sym, *args, **kwargs):
            if not state["failed"] and sym.n == 16:
                state["failed"] = True
                raise ReproError("blip")
            return real(sym, *args, **kwargs)

        monkeypatch.setattr(core_solver, "multifrontal_factor", flaky_first_pattern)
        sleeps = []
        svc = SolverService(
            ServiceConfig(max_retries=2, retry_backoff=40.0),
            clock=FakeClock(),
            sleep=sleeps.append,
        )
        flaky_id = svc.submit(grid2d_laplacian(4), np.ones(16))
        healthy = svc.submit(random_spd_sparse(20, seed=3), np.ones(20))
        res = svc.drain()
        assert res[flaky_id].status == COMPLETED
        assert res[flaky_id].retries == 1
        assert res[healthy].status == COMPLETED
        # The healthy job ran during the park: its queue wait is far below
        # the 40 s backoff the inline-sleep design would have cost it.
        assert res[healthy].queue_wait < 40.0
        # The drain slept only once everything else was done, and only up
        # to the park's wake time.
        assert len(sleeps) == 1
        assert 0.0 < sleeps[0] < 40.0


class TestMetricsAtomicity:
    def hammer(self, fn, threads=4, iters=2000):
        """Run *fn* concurrently with a tiny switch interval (forces the
        interpreter to interleave mid-read-modify-write)."""
        import threading

        old = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        try:
            ts = [
                threading.Thread(target=lambda: [fn() for _ in range(iters)])
                for _ in range(threads)
            ]
            for t in ts:
                t.start()
            for t in ts:
                t.join()
        finally:
            sys.setswitchinterval(old)
        return threads * iters

    def test_counter_increments_are_atomic(self):
        reg = MetricsRegistry()
        total = self.hammer(lambda: reg.inc("hits"))
        assert reg.counter_value("hits") == total

    def test_histogram_observations_are_atomic(self):
        reg = MetricsRegistry()
        total = self.hammer(lambda: reg.observe("lat", 0.5))
        snap = reg.snapshot().histograms["lat"]
        assert snap.count == total
        assert snap.sum == pytest.approx(0.5 * total)

    def test_gauge_inc_dec_atomic(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        self.hammer(lambda: (g.inc(), g.dec()))
        assert g.value == 0.0

    def test_record_off_fast_path_creates_nothing(self):
        reg = MetricsRegistry(record=False)
        reg.inc("hits")
        reg.observe("lat", 1.0)
        snap = reg.snapshot()
        assert snap.counters == {}
        assert snap.histograms == {}
        # Explicit instrument access still works when recording is off.
        reg.counter("hits").inc()
        assert reg.counter_value("hits") == 1.0

    def test_service_metrics_shim_is_thread_safe(self):
        from repro.service import ServiceMetrics

        sm = ServiceMetrics()
        total = self.hammer(lambda: sm.observe("queue_wait", 0.25), iters=500)
        assert sm.summaries()["queue_wait"].count == total
