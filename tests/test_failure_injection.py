"""Failure-injection tests: the system must fail loudly and informatively,
not silently corrupt results."""

import numpy as np
import pytest

from repro.core import ParallelConfig, SparseSolver
from repro.gen import grid2d_laplacian, grid3d_laplacian
from repro.graph import AdjacencyGraph
from repro.machine import GENERIC_CLUSTER
from repro.ordering import nested_dissection_order
from repro.parallel import PlanOptions, simulate_factorization
from repro.sparse import CSCMatrix
from repro.symbolic import analyze
from repro.util.errors import (
    NotPositiveDefiniteError,
    ReproError,
    ShapeError,
    SimulationError,
)


def indefinite_grid(nx):
    """A grid Laplacian poisoned with one large negative diagonal entry."""
    lower = grid2d_laplacian(nx)
    data = lower.data.copy()
    n = lower.shape[0]
    # locate the diagonal entry of the middle column
    j = n // 2
    s, e = lower.indptr[j], lower.indptr[j + 1]
    for k in range(s, e):
        if lower.indices[k] == j:
            data[k] = -100.0
    return CSCMatrix(lower.shape, lower.indptr, lower.indices, data)


class TestNumericFailures:
    def test_sequential_not_pd_error(self):
        solver = SparseSolver(indefinite_grid(5))
        with pytest.raises(NotPositiveDefiniteError):
            solver.factor()

    def test_parallel_not_pd_surfaces_as_simulation_error(self):
        """A pivot failure inside a simulated rank must surface with rank
        context, wrapping the numeric error."""
        lower = indefinite_grid(6)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        sym = analyze(lower, nested_dissection_order(g))
        with pytest.raises(SimulationError, match="rank"):
            simulate_factorization(sym, 4, GENERIC_CLUSTER, PlanOptions(nb=8))

    def test_ldlt_survives_the_same_matrix(self):
        solver = SparseSolver(indefinite_grid(5), method="ldlt")
        b = np.ones(25)
        res = solver.solve(b)
        assert res.residual < 1e-9

    def test_parallel_ldlt_survives(self):
        lower = indefinite_grid(6)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        sym = analyze(lower, nested_dissection_order(g))
        res = simulate_factorization(
            sym, 4, GENERIC_CLUSTER, PlanOptions(nb=8), method="ldlt"
        )
        assert res.makespan > 0


class TestVerificationGuard:
    def test_simulate_verify_passes_on_clean_run(self):
        solver = SparseSolver(grid3d_laplacian(3))
        rep = solver.simulate(
            ParallelConfig(n_ranks=2, machine=GENERIC_CLUSTER, nb=8),
            verify=True,
        )
        assert rep.factor_time > 0

    def test_verify_detects_corruption(self, monkeypatch):
        """If the distributed factor were wrong, verify must catch it."""
        solver = SparseSolver(grid3d_laplacian(3))
        solver.factor()

        from repro.parallel.driver import ParallelFactorResult

        real = ParallelFactorResult.to_dense_l

        def corrupted(self):
            l = real(self)
            l[1, 0] += 1.0
            return l

        monkeypatch.setattr(ParallelFactorResult, "to_dense_l", corrupted)
        with pytest.raises(ReproError, match="mismatch"):
            solver.simulate(
                ParallelConfig(n_ranks=2, machine=GENERIC_CLUSTER, nb=8),
                verify=True,
            )


class TestInputValidation:
    def test_nonfinite_matrix_rejected(self):
        d = np.eye(3)
        d[1, 1] = np.nan
        with pytest.raises(ShapeError):
            CSCMatrix.from_dense(d)

    def test_nonfinite_rhs_rejected(self):
        solver = SparseSolver(grid2d_laplacian(3))
        with pytest.raises(ShapeError):
            solver.solve(np.array([np.inf] + [0.0] * 8))

    def test_simulate_bad_rank_count(self):
        solver = SparseSolver(grid2d_laplacian(3))
        with pytest.raises(ReproError):
            solver.simulate(ParallelConfig(n_ranks=0))

    def test_solve_shape_mismatch(self):
        solver = SparseSolver(grid2d_laplacian(3))
        with pytest.raises(ShapeError):
            solver.solve(np.ones(4))
