"""Smoke tests: the parameterizable examples run end-to-end at small sizes.

The heavier fixed-size examples (quickstart, structural_analysis_3d,
scaling_study) are exercised implicitly by the library tests covering the
same call paths; running them here would dominate suite time.
"""

import sys
from pathlib import Path


sys.path.insert(0, str(Path(__file__).parent.parent / "examples"))


def test_ordering_playground_runs(capsys):
    import ordering_playground

    ordering_playground.main()
    out = capsys.readouterr().out
    assert "separator" in out


def test_domain_decomposition_runs(capsys):
    import domain_decomposition

    domain_decomposition.main(9)
    out = capsys.readouterr().out
    assert "substructured vs monolithic" in out


def test_transport_lu_runs(capsys):
    import transport_lu

    transport_lu.main(10)
    out = capsys.readouterr().out
    assert "cross-check" in out


def test_solver_service_runs(capsys):
    import solver_service

    solver_service.main(steps=12, size=4, new_patterns=2)
    out = capsys.readouterr().out
    assert "analysis cache" in out
    assert "hit rate" in out


def test_capacity_planning_runs(capsys):
    import capacity_planning

    capacity_planning.main(8)
    out = capsys.readouterr().out
    assert "bottoms out" in out
    assert "validation" in out
