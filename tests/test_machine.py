"""Tests for repro.machine: model arithmetic, topologies, presets."""

import pytest

from repro.machine import (
    MachineModel,
    FlatTopology,
    Torus3D,
    FatTree,
    BLUEGENE_P,
    POWER5_CLUSTER,
    GENERIC_CLUSTER,
    get_machine,
)
from repro.util.errors import ShapeError


def simple_machine(**over):
    kw = dict(
        name="t",
        flop_rate=1e9,
        dense_efficiency=0.8,
        small_kernel_efficiency=0.1,
        kernel_crossover=64,
        mem_bandwidth=1e9,
        alpha=1e-6,
        alpha_hop=1e-7,
        beta=1e-9,
    )
    kw.update(over)
    return MachineModel(**kw)


class TestTopologies:
    def test_flat(self):
        t = FlatTopology()
        assert t.hops(0, 0, 8) == 0
        assert t.hops(0, 7, 8) == 1

    def test_torus_self(self):
        assert Torus3D().hops(3, 3, 64) == 0

    def test_torus_neighbors(self):
        t = Torus3D()
        # 64 ranks -> 4x4x4; ranks 0 and 1 differ by one x step.
        assert t.hops(0, 1, 64) == 1

    def test_torus_wraparound(self):
        t = Torus3D()
        # 8 ranks -> 2x2x2: max distance is 3 (1 per dim)
        dmax = max(t.hops(0, b, 8) for b in range(8))
        assert dmax == 3

    def test_torus_symmetry(self):
        t = Torus3D()
        for a in range(0, 27, 5):
            for b in range(0, 27, 7):
                assert t.hops(a, b, 27) == t.hops(b, a, 27)

    def test_torus_dims_cover(self):
        for p in (1, 2, 6, 17, 64, 100):
            x, y, z = Torus3D._dims(p)
            assert x * y * z == p

    def test_fattree_same_switch(self):
        t = FatTree(radix=4)
        assert t.hops(0, 3, 64) == 2
        assert t.hops(0, 0, 64) == 0

    def test_fattree_deeper(self):
        t = FatTree(radix=4)
        assert t.hops(0, 4, 64) == 4
        assert t.hops(0, 16, 64) == 6

    def test_fattree_bad_radix(self):
        with pytest.raises(ValueError):
            FatTree(radix=1)


class TestMachineModel:
    def test_compute_time_scaling(self):
        m = simple_machine()
        assert m.compute_time(2e9) == pytest.approx(2 * m.compute_time(1e9))

    def test_kernel_efficiency_monotone(self):
        m = simple_machine()
        effs = [m.kernel_efficiency(k) for k in (1, 10, 100, 1000, 100000)]
        assert all(b >= a for a, b in zip(effs, effs[1:]))
        assert effs[0] >= m.small_kernel_efficiency
        assert effs[-1] <= m.dense_efficiency

    def test_small_front_slower(self):
        m = simple_machine()
        assert m.compute_time(1e6, front_order=4) > m.compute_time(1e6, front_order=4096)

    def test_message_time_components(self):
        m = simple_machine()
        t_small = m.message_time(0, 0, 1, 8)
        t_big = m.message_time(10**6, 0, 1, 8)
        assert t_small >= m.alpha
        assert t_big >= t_small + 1e6 * m.beta * 0.99

    def test_message_self_is_memcpy(self):
        m = simple_machine()
        assert m.message_time(1000, 2, 2, 8) == pytest.approx(m.mem_time(1000))

    def test_smp_speedup(self):
        m = simple_machine(max_threads_per_rank=4, smp_efficiency_slope=0.05)
        assert m.smp_speedup(1) == 1.0
        assert 1.0 < m.smp_speedup(2) <= 2.0
        assert m.smp_speedup(8) == m.smp_speedup(4)  # capped

    def test_smp_invalid_threads(self):
        with pytest.raises(ShapeError):
            simple_machine().smp_speedup(0)

    def test_validation(self):
        with pytest.raises(ShapeError):
            simple_machine(flop_rate=-1)
        with pytest.raises(ShapeError):
            simple_machine(dense_efficiency=1.5)
        with pytest.raises(ShapeError):
            simple_machine(small_kernel_efficiency=0.9)
        with pytest.raises(ShapeError):
            simple_machine(alpha=-1e-6)

    def test_peak_gflops(self):
        m = simple_machine()
        assert m.peak_gflops() == pytest.approx(1.0)


class TestPresets:
    def test_lookup(self):
        assert get_machine("bluegene-p") is BLUEGENE_P
        assert get_machine("power5-cluster") is POWER5_CLUSTER
        assert get_machine("generic-cluster") is GENERIC_CLUSTER

    def test_unknown(self):
        with pytest.raises(ShapeError):
            get_machine("cray-xt5")

    def test_power5_faster_core_than_bgp(self):
        # The paper's contrast: fewer fat cores vs many slim ones.
        assert POWER5_CLUSTER.flop_rate > BLUEGENE_P.flop_rate

    def test_bgp_lower_latency_network(self):
        assert BLUEGENE_P.alpha < POWER5_CLUSTER.alpha
