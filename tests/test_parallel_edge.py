"""Edge-case tests for the parallel engine: degenerate trees, tiny
matrices, more ranks than work."""

import numpy as np
import pytest

from repro.gen import grid2d_laplacian
from repro.graph import AdjacencyGraph
from repro.machine import GENERIC_CLUSTER
from repro.mf import multifrontal_factor
from repro.ordering import nested_dissection_order
from repro.parallel import PlanOptions, simulate_factorization, simulate_solve
from repro.sparse import CSCMatrix
from repro.sparse.ops import sym_matvec_lower
from repro.symbolic import analyze
from repro.util.rng import make_rng


def analyzed_dense(n):
    """Fully dense SPD matrix: one supernode, no tree parallelism."""
    rng = make_rng(0)
    m = rng.standard_normal((n, n))
    a = m @ m.T + n * np.eye(n)
    lower = CSCMatrix.from_dense(np.tril(a))
    return lower, analyze(lower, np.arange(n))


def analyzed_diagonal(n):
    """Diagonal matrix: n singleton supernodes, no fronts to distribute."""
    lower = CSCMatrix.from_dense(np.diag(np.arange(1.0, n + 1)))
    return lower, analyze(lower, np.arange(n))


class TestDegenerateStructures:
    @pytest.mark.parametrize("p", [2, 4, 6])
    def test_dense_matrix_single_front(self, p):
        lower, sym = analyzed_dense(24)
        seq = multifrontal_factor(sym)
        res = simulate_factorization(sym, p, GENERIC_CLUSTER, PlanOptions(nb=4))
        np.testing.assert_allclose(
            res.to_dense_l(), seq.to_dense_l(), rtol=1e-8, atol=1e-8
        )
        b = make_rng(1).standard_normal(24)
        sol = simulate_solve(res, b)
        r = np.max(np.abs(b - sym_matvec_lower(lower, sol.x)))
        assert r < 1e-8

    @pytest.mark.parametrize("p", [1, 3])
    def test_diagonal_matrix(self, p):
        lower, sym = analyzed_diagonal(10)
        res = simulate_factorization(sym, p, GENERIC_CLUSTER, PlanOptions(nb=4))
        b = np.arange(1.0, 11.0)
        sol = simulate_solve(res, b)
        np.testing.assert_allclose(sol.x, np.ones(10), rtol=1e-12)

    def test_1x1_matrix_p2(self):
        lower = CSCMatrix.from_dense(np.array([[9.0]]))
        sym = analyze(lower, np.arange(1))
        res = simulate_factorization(sym, 2, GENERIC_CLUSTER, PlanOptions(nb=4))
        sol = simulate_solve(res, np.array([18.0]))
        np.testing.assert_allclose(sol.x, [2.0])

    def test_more_ranks_than_supernodes(self):
        lower = grid2d_laplacian(3)  # 9 unknowns
        g = AdjacencyGraph.from_symmetric_lower(lower)
        sym = analyze(lower, nested_dissection_order(g))
        p = 16
        res = simulate_factorization(sym, p, GENERIC_CLUSTER, PlanOptions(nb=4))
        b = np.ones(9)
        sol = simulate_solve(res, b)
        r = np.max(np.abs(b - sym_matvec_lower(lower, sol.x)))
        assert r < 1e-10

    def test_tridiagonal_chain_tree(self):
        n = 20
        d = np.eye(n) * 4 + np.diag(-np.ones(n - 1), -1) + np.diag(-np.ones(n - 1), 1)
        lower = CSCMatrix.from_dense(np.tril(d))
        sym = analyze(lower, np.arange(n))
        res = simulate_factorization(sym, 4, GENERIC_CLUSTER, PlanOptions(nb=4))
        seq = multifrontal_factor(sym)
        np.testing.assert_allclose(
            res.to_dense_l(), seq.to_dense_l(), rtol=1e-10, atol=1e-12
        )


class TestDistributionEdges:
    def test_nb_larger_than_any_front(self):
        lower = grid2d_laplacian(5)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        sym = analyze(lower, nested_dissection_order(g))
        res = simulate_factorization(
            sym, 4, GENERIC_CLUSTER, PlanOptions(nb=10_000)
        )
        seq = multifrontal_factor(sym)
        np.testing.assert_allclose(
            res.to_dense_l(), seq.to_dense_l(), rtol=1e-10, atol=1e-10
        )

    def test_nb_one(self):
        lower, sym = analyzed_dense(8)
        res = simulate_factorization(sym, 3, GENERIC_CLUSTER, PlanOptions(nb=1))
        seq = multifrontal_factor(sym)
        np.testing.assert_allclose(
            res.to_dense_l(), seq.to_dense_l(), rtol=1e-8, atol=1e-8
        )

    def test_1d_policy_group_of_two(self):
        lower, sym = analyzed_dense(12)
        res = simulate_factorization(
            sym, 2, GENERIC_CLUSTER, PlanOptions(nb=4, policy="1d")
        )
        seq = multifrontal_factor(sym)
        np.testing.assert_allclose(
            res.to_dense_l(), seq.to_dense_l(), rtol=1e-8, atol=1e-8
        )

    def test_odd_rank_counts(self):
        lower = grid2d_laplacian(6)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        sym = analyze(lower, nested_dissection_order(g))
        seq = multifrontal_factor(sym)
        for p in (3, 5, 7):
            res = simulate_factorization(sym, p, GENERIC_CLUSTER, PlanOptions(nb=8))
            np.testing.assert_allclose(
                res.to_dense_l(), seq.to_dense_l(), rtol=1e-9, atol=1e-9
            )
